//===- exp2_generational.cpp - §6 generational-collector argument -------------===//
//
// Regenerates the §6 argument that a simple, infrequently-run generational
// compacting collector fixes lp and serves the other programs as well as
// Cheney does: O_gc for the two-generation collector vs the Cheney
// collector, per program, at 64-byte blocks. For lp the generational
// collector avoids repeatedly copying the monotonically growing old
// structure, so its overhead must drop far below Cheney's >=40%.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace gcache;

int main(int Argc, char **Argv) {
  BenchArgs A = parseBenchArgs(Argc, Argv);
  benchHeader("Experiment 2 (§6)",
              "generational vs Cheney collection overhead", A);

  Machine Slow = slowMachine();
  Machine Fast = fastMachine();
  std::vector<uint32_t> ReportSizes = {64u << 10, 256u << 10, 1u << 20};

  Table T({"program", "collector", "minor/major GCs", "words copied",
           "O_gc 64kb slow", "O_gc 1mb slow", "O_gc 1mb fast"});

  BenchUnitRunner Runner;
  for (const Workload *W : selectWorkloads(A)) {
    ExperimentOptions Ctrl = baseExperimentOptions(A);
    Ctrl.Grid = CacheGridKind::SizeSweep;
    std::printf("running %s (control)...\n", W->Name.c_str());
    Expected<ProgramRun> Ctl = Runner.run(W->Name + " (control)", *W, Ctrl);
    if (!Ctl.ok())
      continue;
    ProgramRun Control = Ctl.take();

    for (GcKind Kind : {GcKind::Cheney, GcKind::Generational}) {
      ExperimentOptions Gc = Ctrl;
      Gc.Gc = Kind;
      Gc.SemispaceBytes = semispaceFor(Control);
      // The generational collector's old generation is sized like a
      // conventional heap (a third of the run's allocation), not like
      // lp's deliberately tight Cheney semispaces; its point is precisely
      // that old data stops being copied.
      Gc.Generational.OldSemispaceBytes = static_cast<uint32_t>(
          (std::max<uint64_t>(Control.AllocBytes / 3, 1u << 20) + 0xffff) &
          ~0xffffull);
      const char *Name = Kind == GcKind::Cheney ? "cheney" : "generational";
      std::printf("running %s (%s)...\n", W->Name.c_str(), Name);
      Expected<ProgramRun> R =
          Runner.run(W->Name + " (" + Name + ")", *W, Gc);
      if (!R.ok())
        continue;
      ProgramRun Run = R.take();

      auto OGc = [&](uint32_t Size, const Machine &M) {
        return gcOverhead(gcInputsFor(*Run.Bank->find(Size, 64),
                                      *Control.Bank->find(Size, 64), Run, M));
      };
      const GcStats &S = Run.Stats.Gc;
      T.addRow({W->Name, Name,
                std::to_string(S.Collections - S.MajorCollections) + "/" +
                    std::to_string(S.MajorCollections),
                fmtCount(S.WordsCopied), fmtPercent(OGc(64 << 10, Slow)),
                fmtPercent(OGc(1 << 20, Slow)), fmtPercent(OGc(1 << 20, Fast))});
    }
  }
  printTable(T, A);
  std::printf("\nExpected: lp/cheney >= 40%% per the paper; lp/generational "
              "far lower; others comparable under both collectors.\n");
  return Runner.finish();
}
