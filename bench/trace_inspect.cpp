//===- trace_inspect.cpp - Trace-file validation, salvage, and replay ------===//
//
// Operator tool for recorded trace files: validates a trace's framing and
// checksum (distinguishing corrupt from merely truncated files), optionally
// salvages the longest valid prefix of a damaged trace, and replays a trace
// through a cache simulation with the crash-safe checkpoint machinery — the
// same path the supervised experiment runner uses, exposed directly so a
// long replay can be killed and resumed from its last checkpoint.
//
// Flags (besides the shared bench flags):
//   --trace=<path>      trace file to inspect (required)
//   --salvage           replay/summarize the valid prefix of a damaged file
//   --batch-stats       report how the reference stream divides into
//                       columnar batches (--batch sets the capacity):
//                       batch-size distribution and per-phase/per-kind
//                       column occupancy
//   --replay            replay into a simulated cache and print miss counts
//                       (serial replays use the batch kernel; --no-batch
//                       reverts to per-reference dispatch)
//   --cache-size=<b>    simulated cache size for --replay (default 65536)
//   --block-size=<b>    simulated block size for --replay (default 64)
//   --stop-after=<n>    abort after n records (kill simulation for testing)
//
// With --checkpoint-dir (and optionally --checkpoint-every / --resume), the
// replay cuts snapshots at GC boundaries and every N records, and resumes
// from the last snapshot when one exists. --crosscheck/--audit validate the
// replay with the shadow oracle / conservation auditor.
//
// Exit codes: 0 valid (or salvage dropped nothing), 1 damaged or replay
// failure, 2 usage error, 3 resumable partial replay (test-kill abort, or
// a --deadline/--max-refs/signal drain to a checkpoint), 4 salvage
// truncated data (the summary reports the dropped bytes/records).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gcache/trace/TraceFile.h"

using namespace gcache;

int main(int Argc, char **Argv) {
  BenchArgs A = parseBenchArgs(Argc, Argv,
                               {"trace", "salvage", "batch-stats", "replay",
                                "cache-size", "block-size", "stop-after"});

  std::string TracePath = A.Opts.get("trace", "");
  if (TracePath.empty()) {
    std::fprintf(stderr, "error: --trace=<path> is required\n");
    return 2;
  }
  bool Salvage = A.Opts.getBool("salvage");

  TraceStream Stream;
  if (Status S = Stream.open(TracePath, Salvage); !S.ok()) {
    std::fprintf(stderr, "%s: %s: %s\n", TracePath.c_str(),
                 statusCodeName(S.code()), S.message().c_str());
    if (S.code() == StatusCode::Truncated || S.code() == StatusCode::Corrupt)
      std::fprintf(stderr,
                   "hint: --salvage replays the longest valid record prefix\n");
    return 1;
  }

  uint64_t StartIndex = Stream.recordIndex();
  uint64_t StartOffset = Stream.byteOffset();
  uint64_t Refs = 0, Allocs = 0, GcBegins = 0, GcEnds = 0;
  uint64_t AllocBytes = 0;
  TraceRecord Rec;
  while (Stream.next(Rec)) {
    switch (Rec.Op) {
    case TraceRecord::Kind::Ref:
      ++Refs;
      break;
    case TraceRecord::Kind::Alloc:
      ++Allocs;
      AllocBytes += Rec.AllocBytes;
      break;
    case TraceRecord::Kind::GcBegin:
      ++GcBegins;
      break;
    case TraceRecord::Kind::GcEnd:
      ++GcEnds;
      break;
    }
  }

  std::printf("%s: %s, %llu records\n", TracePath.c_str(),
              Stream.damage().ok() ? "valid" : "salvaged prefix",
              static_cast<unsigned long long>(Stream.recordCount()));
  bool SalvageTruncated = false;
  if (!Stream.damage().ok()) {
    std::printf("  damage: %s: %s\n", statusCodeName(Stream.damage().code()),
                Stream.damage().message().c_str());
    SalvageTruncated =
        Stream.droppedBytes() != 0 || Stream.droppedRecords() != 0;
    std::printf("  salvage dropped %llu bytes, %llu of %llu promised "
                "records\n",
                static_cast<unsigned long long>(Stream.droppedBytes()),
                static_cast<unsigned long long>(Stream.droppedRecords()),
                static_cast<unsigned long long>(Stream.declaredRecordCount()));
  }
  std::printf("  refs %llu, allocs %llu (%llu bytes), gc %llu begin / %llu "
              "end\n",
              static_cast<unsigned long long>(Refs),
              static_cast<unsigned long long>(Allocs),
              static_cast<unsigned long long>(AllocBytes),
              static_cast<unsigned long long>(GcBegins),
              static_cast<unsigned long long>(GcEnds));

  if (A.Opts.getBool("batch-stats")) {
    size_t Cap = A.BatchRefs ? A.BatchRefs : CacheBank::DefaultBatchRefs;
    if (Status S = Stream.seekTo(StartIndex, StartOffset); !S.ok()) {
      std::fprintf(stderr, "batch-stats: %s\n", S.message().c_str());
      return 1;
    }
    TraceBatchStats B = collectTraceBatchStats(Stream, Cap);
    std::printf("batch-stats (capacity %zu refs):\n", Cap);
    std::printf("  %llu batches (%llu cut by capacity), sizes min %llu / "
                "mean %.1f / max %llu\n",
                static_cast<unsigned long long>(B.Batches),
                static_cast<unsigned long long>(B.FullBatches),
                static_cast<unsigned long long>(B.MinBatch), B.meanBatch(),
                static_cast<unsigned long long>(B.MaxBatch));
    std::printf("  column occupancy: %llu refs — %.1f%% mutator / %.1f%% "
                "collector, %.1f%% loads / %.1f%% stores\n",
                static_cast<unsigned long long>(B.Refs),
                B.Refs ? 100.0 * B.MutatorRefs / B.Refs : 0.0,
                B.Refs ? 100.0 * B.CollectorRefs / B.Refs : 0.0,
                B.Refs ? 100.0 * B.Loads / B.Refs : 0.0,
                B.Refs ? 100.0 * B.Stores / B.Refs : 0.0);
    std::printf("  %llu non-reference records interleave the batches\n",
                static_cast<unsigned long long>(B.OtherRecords));
  }

  if (!A.Opts.getBool("replay"))
    return SalvageTruncated ? 4 : 0;

  CacheConfig Cfg;
  Cfg.SizeBytes = static_cast<uint32_t>(
      A.Opts.getStrictUnsigned("cache-size", 64 * 1024).take());
  Cfg.BlockBytes =
      static_cast<uint32_t>(A.Opts.getStrictUnsigned("block-size", 64).take());
  if (!Cfg.isValid()) {
    std::fprintf(stderr, "error: invalid cache geometry (%u B, %u B blocks)\n",
                 Cfg.SizeBytes, Cfg.BlockBytes);
    return 2;
  }

  CacheBank Bank;
  Bank.addConfig(Cfg);
  if (A.CrossCheckEvery)
    Bank.enableCrossCheck(A.CrossCheckEvery);
  if (A.Threads)
    Bank.setThreads(A.Threads,
                    A.BatchRefs ? A.BatchRefs : CacheBank::DefaultBatchRefs);
  else if (!A.NoBatch)
    Bank.setBatched(true,
                    A.BatchRefs ? A.BatchRefs : CacheBank::DefaultBatchRefs);
  CountingSink Counts;

  ReplayCheckpointOptions RO;
  RO.Salvage = Salvage;
  RO.Audit = A.Audit;
  RO.StopAfterRecords = A.Opts.getStrictUnsigned("stop-after", 0).take();
  const CheckpointContext &Ctx = checkpointContext();
  if (Ctx.enabled()) {
    RO.SnapshotPath = Ctx.unitSnapshotPath("trace-replay");
    RO.EveryRefs = Ctx.EveryRefs;
    RO.Resume = Ctx.Resume;
  }

  Expected<ReplayCheckpointResult> R =
      replayTraceCheckpointed(TracePath, Bank, Counts, RO);
  if (!R.ok()) {
    std::fprintf(stderr, "replay: %s: %s\n", statusCodeName(R.status().code()),
                 R.status().message().c_str());
    // The test kill leaves a resumable checkpoint behind; that is the
    // expected outcome, not a trace problem.
    return R.status().code() == StatusCode::Aborted ? 3 : 1;
  }
  if (R->Resumed)
    std::printf("replay: resumed at record %llu\n",
                static_cast<unsigned long long>(R->StartRecord));
  std::printf("replay: %llu records dispatched (total refs %llu, %llu "
              "collections)\n",
              static_cast<unsigned long long>(R->RecordsReplayed),
              static_cast<unsigned long long>(Counts.totalRefs()),
              static_cast<unsigned long long>(Counts.collections()));
  if (R->partial()) {
    // A budget/deadline/signal drain: the counters cover the replayed
    // prefix and the drain checkpoint is resumable (like exit 3's
    // test-kill, but graceful).
    std::printf("replay: PARTIAL (%s): %s; coverage %.0f%%\n",
                unitOutcomeName(R->Outcome), R->OutcomeNote.c_str(),
                R->Coverage >= 0 ? R->Coverage * 100.0 : 0.0);
    return 3;
  }

  const Cache &C = Bank.cache(0);
  CacheCounters Sum = C.counters(Phase::Mutator);
  Sum += C.counters(Phase::Collector);
  std::printf("cache %s: %llu refs, %llu fetch misses, %llu no-fetch "
              "misses, %llu writebacks\n",
              C.config().label().c_str(),
              static_cast<unsigned long long>(Sum.refs()),
              static_cast<unsigned long long>(Sum.FetchMisses),
              static_cast<unsigned long long>(Sum.NoFetchMisses),
              static_cast<unsigned long long>(Sum.Writebacks));
  return SalvageTruncated ? 4 : 0;
}
