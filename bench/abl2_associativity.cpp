//===- abl2_associativity.cpp - §4 ablation: set associativity ----------------===//
//
// The paper restricts itself to direct-mapped caches (§4), arguing they
// are what high-performance machines use and that the programs suit them.
// This ablation quantifies what associativity would have bought: miss
// ratios and O_cache for 1-, 2-, and 4-way caches (LRU) at 64-byte
// blocks over the cache-size axis, for orbit and gambit (the best- and
// worst-spread programs of §7).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace gcache;

int main(int Argc, char **Argv) {
  BenchArgs A = parseBenchArgs(Argc, Argv);
  benchHeader("Ablation 2 (§4)", "direct-mapped vs set-associative", A);

  Machine Slow = slowMachine();
  std::vector<uint32_t> Ways = {1, 2, 4};
  std::vector<std::string> Names =
      A.Workload.empty() ? std::vector<std::string>{"orbit", "gambit"}
                         : std::vector<std::string>{A.Workload};

  BenchUnitRunner Runner;
  for (const std::string &Name : Names) {
    const Workload *W = findWorkload(Name);
    if (!W) {
      Runner.recordFailure(
          Name, Status::failf(StatusCode::InvalidArgument,
                              "unknown workload '%s'", Name.c_str()));
      continue;
    }

    // One run; the bank holds every (size, ways) combination.
    auto Bank = std::make_unique<CacheBank>();
    for (uint32_t Size : paperCacheSizes())
      for (uint32_t Way : Ways) {
        CacheConfig C;
        C.SizeBytes = Size;
        C.BlockBytes = 64;
        C.Ways = Way;
        Bank->addConfig(C);
      }

    ExperimentOptions Opts = baseExperimentOptions(A);
    Opts.Grid = CacheGridKind::None;
    Opts.ExtraSinks = {Bank.get()};
    std::printf("running %s...\n", W->Name.c_str());
    Expected<ProgramRun> R = Runner.run(W->Name, *W, Opts);
    if (!R.ok())
      continue;
    ProgramRun Run = R.take();

    std::printf("\n--- %s: O_cache (slow processor) by associativity ---\n",
                W->Name.c_str());
    Table T({"cache", "direct", "2-way", "4-way", "direct misses",
             "4-way misses"});
    for (uint32_t Size : paperCacheSizes()) {
      std::vector<std::string> Row = {fmtSize(Size)};
      uint64_t DirectMisses = 0, Way4Misses = 0;
      for (uint32_t Way : Ways) {
        const Cache *C = nullptr;
        for (size_t I = 0; I != Bank->size(); ++I)
          if (Bank->cache(I).config().SizeBytes == Size &&
              Bank->cache(I).config().Ways == Way)
            C = &Bank->cache(I);
        Row.push_back(fmtPercent(controlOverhead(*C, Run, Slow)));
        if (Way == 1)
          DirectMisses = C->counters(Phase::Mutator).FetchMisses;
        if (Way == 4)
          Way4Misses = C->counters(Phase::Mutator).FetchMisses;
      }
      Row.push_back(fmtCount(DirectMisses));
      Row.push_back(fmtCount(Way4Misses));
      T.addRow(Row);
    }
    printTable(T, A);
  }
  std::printf("\nExpected: modest gains from associativity — the programs' "
              "one-cycle allocation behaviour already avoids most conflict "
              "misses, supporting the paper's direct-mapped focus.\n");
  return Runner.finish();
}
