//===- LocalMissMain.h - Shared main for the §7 local-miss figures -*- C++ -*-===//
//
// Part of the gcache project (Reinhold, PLDI 1994 reproduction).
// Figures 5-8 are the same analysis applied to different programs and
// cache sizes; each bench binary supplies its parameters and calls
// localMissFigureMain.
//
//===----------------------------------------------------------------------===//

#ifndef GCACHE_BENCH_LOCALMISSMAIN_H
#define GCACHE_BENCH_LOCALMISSMAIN_H

#include "BenchCommon.h"

#include "gcache/analysis/LocalMissStats.h"
#include "gcache/core/Audit.h"

namespace gcache {

/// Runs \p DefaultWorkload (no GC) against one per-block-tracked cache of
/// \p CacheBytes with 64-byte blocks and prints the §7 cache-activity
/// curves: per-cache-block local miss ratios in ascending reference-count
/// order, cumulative miss/reference fractions, and the cumulative miss
/// ratio with its final best-case drop.
inline int localMissFigureMain(int Argc, char **Argv, const char *Id,
                               const char *DefaultWorkload,
                               uint32_t CacheBytes,
                               const char *ExpectedShape) {
  BenchArgs A = parseBenchArgs(Argc, Argv);
  std::string Name = A.Workload.empty() ? DefaultWorkload : A.Workload;
  benchHeader(Id,
              ("per-cache-block activity, " + Name + ", " +
               fmtSize(CacheBytes) + "/64b, no GC")
                  .c_str(),
              A);
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "error: unknown workload %s\n", Name.c_str());
    return 2;
  }

  CacheConfig Config;
  Config.SizeBytes = CacheBytes;
  Config.BlockBytes = 64;
  Config.TrackPerBlockStats = true;
  Cache Sim(Config);
  // This cache rides as an extra sink, outside any bank, so the
  // validation flags are applied to it directly.
  if (A.CrossCheckEvery)
    Sim.enableCrossCheck(A.CrossCheckEvery);

  ExperimentOptions Opts = baseExperimentOptions(A);
  Opts.Grid = CacheGridKind::None;
  Opts.ExtraSinks = {&Sim};
  BenchUnitRunner Runner;
  Expected<ProgramRun> R = Runner.run(Name, *W, Opts);
  if (!R.ok())
    return Runner.finish();
  ProgramRun Run = R.take();

  if (A.CrossCheckEvery)
    if (Status S = Sim.crossCheckNow(); !S.ok()) {
      Runner.recordFailure(Name + " crosscheck", S);
      return Runner.finish();
    }

  LocalMissCurves Curves = computeLocalMissCurves(Sim);
  if (A.Audit)
    if (Status S = auditLocalMissCurves(Curves, Sim); !S.ok()) {
      Runner.recordFailure(Name + " audit", S);
      return Runner.finish();
    }
  std::printf("%s: %s refs\n\n", Run.Name.c_str(),
              fmtCount(Run.TotalRefs).c_str());
  std::fputs(renderLocalMissTable(Curves, 16).c_str(), stdout);
  std::printf("bad blocks (local miss ratio > 0.25): %zu of %zu\n",
              Curves.countAbove(0.25), Curves.Points.size());
  std::printf("\nExpected: %s\n", ExpectedShape);
  return Runner.finish();
}

} // namespace gcache

#endif // GCACHE_BENCH_LOCALMISSMAIN_H
