//===- exp3_block_behaviour.cpp - §7 block-behaviour statistics ---------------===//
//
// Regenerates the §7 numerical claims about memory behaviour (64-byte
// blocks, 64 KB reference cache, no GC):
//  - at least 90% of multi-cycle dynamic blocks are active in at most 4
//    distinct allocation cycles;
//  - most dynamic blocks are referenced only a few dozen times (the paper:
//    between 32 and 63 times for most);
//  - a handful of busy blocks (>= 1/1000 of references each) — mostly
//    static: closures, the stack, the hot runtime vector — account for
//    ~75% of all references, the runtime vector alone for ~6.7%.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gcache/analysis/BlockTracker.h"

using namespace gcache;

int main(int Argc, char **Argv) {
  BenchArgs A = parseBenchArgs(Argc, Argv);
  benchHeader("Experiment 3 (§7)", "per-block behaviour statistics", A);

  Table T({"program", "dyn blocks", "one-cycle", "multi<=4cyc",
           "busy static", "busy dyn", "busy refs", "rt-vec refs",
           "stack refs"});
  Table RefT({"program", "refs<=3", "<=15", "<=63", "<=255", ">255"});
  Table CycleT({"program", "<=16k", "<=128k", "<=1m", "<=8m", "cycles"});

  BenchUnitRunner Runner;
  for (const Workload *W : selectWorkloads(A)) {
    // The hot runtime vector is the VM's first static allocation, so its
    // address is Heap::StaticBase.
    BlockTracker Tracker(64, 64 << 10, Heap::StaticBase);
    ExperimentOptions Opts = baseExperimentOptions(A);
    Opts.Grid = CacheGridKind::None;
    Opts.ExtraSinks = {&Tracker};
    std::printf("running %s...\n", W->Name.c_str());
    if (!Runner.run(W->Name, *W, Opts).ok())
      continue;
    BlockTracker *Tr = &Tracker;
    BlockSummary S = Tr->computeSummary();

    double MultiLe4 =
        S.MultiCycleBlocks
            ? static_cast<double>(S.MultiCycleActiveLe4) / S.MultiCycleBlocks
            : 1.0;
    T.addRow({W->Name, fmtCount(S.DynamicBlocks),
              fmtPercent(S.oneCycleFraction()), fmtPercent(MultiLe4),
              std::to_string(S.BusyStaticBlocks),
              std::to_string(S.BusyDynamicBlocks),
              fmtPercent(S.busyRefsFraction()),
              fmtPercent(static_cast<double>(S.RuntimeVectorRefs) /
                         S.TotalRefs),
              fmtPercent(static_cast<double>(S.StackRefs) / S.TotalRefs)});

    const Log2Histogram &H = Tr->dynamicRefCounts();
    auto Frac = [&](uint64_t X) {
      return fmtDouble(H.cumulativeFractionAt(X), 3);
    };
    RefT.addRow({W->Name, Frac(3), Frac(15), Frac(63), Frac(255),
                 fmtDouble(1.0 - H.cumulativeFractionAt(255), 3)});
    const Log2Histogram &CL = Tr->cycleLengths();
    auto CFrac = [&](uint64_t X) {
      return fmtDouble(CL.cumulativeFractionAt(X), 3);
    };
    CycleT.addRow({W->Name, CFrac(16 << 10), CFrac(128 << 10),
                   CFrac(1 << 20), CFrac(8 << 20), fmtCount(CL.total())});
  }
  std::printf("\n--- allocation-cycle lengths at 64kb (refs, cumulative) ---\n");
  printTable(CycleT, A);
  std::printf("\n--- block classes and busy blocks ---\n");
  printTable(T, A);
  std::printf("\n--- dynamic-block reference-count distribution "
              "(cumulative) ---\n");
  printTable(RefT, A);
  std::printf("\nPaper: >=90%% of multi-cycle blocks active in <=4 cycles; "
              "busy blocks ~75%% of refs; runtime vector ~6.7%%.\n");
  return Runner.finish();
}
