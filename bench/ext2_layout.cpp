//===- ext2_layout.cpp - §7 extension: static placement sensitivity ------------===//
//
// The paper attributes nbody's and imps's occasional thrashing to busy
// blocks that happen to share a cache block, and remarks that curing it
// "does not require a specialized garbage collector, but can be achieved
// by straightforward static methods that move frequently-accessed
// objects so that they do not collide" [its ref 33]. This extension
// quantifies that: each program runs under several static-area layouts
// (different scatter seeds re-roll which busy static blocks collide) and
// reports the spread of O_cache in a 64 KB cache. A large max/min ratio
// means performance is placement luck — and that placement is the cheap
// fix the paper claims.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace gcache;

int main(int Argc, char **Argv) {
  BenchArgs A = parseBenchArgs(Argc, Argv, {"seeds"});
  benchHeader("Extension 2 (§7)",
              "static-layout sensitivity: O_cache across scatter seeds "
              "(64kb/64b, slow processor)",
              A);
  Expected<unsigned> SeedCount = A.Opts.getStrictUnsigned("seeds", 6);
  if (!SeedCount.ok()) {
    std::fprintf(stderr, "error: %s\n", SeedCount.status().message().c_str());
    return 2;
  }
  int Seeds = static_cast<int>(*SeedCount);

  Machine Slow = slowMachine();
  std::vector<std::string> Header = {"program"};
  for (int S = 0; S != Seeds; ++S)
    Header.push_back("seed " + std::to_string(S));
  Header.push_back("max/min");
  Table T(Header);

  BenchUnitRunner Runner;
  for (const Workload *W : selectWorkloads(A)) {
    std::vector<std::string> Row = {W->Name};
    double Lo = 1e9, Hi = 0;
    bool AllSeedsRan = true;
    for (int S = 0; S != Seeds; ++S) {
      Cache Sim({.SizeBytes = 64 << 10, .BlockBytes = 64});
      ExperimentOptions O = baseExperimentOptions(A);
      O.Grid = CacheGridKind::None;
      O.LayoutSeed = S == 0 ? 0 : static_cast<uint64_t>(S) * 7919;
      O.ExtraSinks = {&Sim};
      std::printf("running %s (layout seed %d)...\n", W->Name.c_str(), S);
      Expected<ProgramRun> R = Runner.run(
          W->Name + " (seed " + std::to_string(S) + ")", *W, O);
      if (!R.ok()) {
        AllSeedsRan = false;
        break;
      }
      double Ov = controlOverhead(Sim, *R, Slow);
      Lo = std::min(Lo, Ov);
      Hi = std::max(Hi, Ov);
      Row.push_back(fmtPercent(Ov));
    }
    if (!AllSeedsRan)
      continue;
    Row.push_back(Lo > 0 ? fmtDouble(Hi / Lo, 2) : "inf");
    T.addRow(Row);
  }
  std::printf("\n");
  printTable(T, A);
  std::printf("\nReading the table: the spread across seeds is the cost of "
              "unlucky busy-block placement; a layout pass that separates "
              "the hottest blocks gets the minimum column for free.\n");
  return Runner.finish();
}
