//===- abl1_aggressive.cpp - §6 ablation: aggressive collection ---------------===//
//
// Tests the paper's central counter-argument (§6): an *aggressive*
// collector — a generational collector whose first generation fits in the
// cache — must collect far more often and copy relatively more (objects
// get less time to die), so its overhead should exceed that of an
// infrequently-run generational collector even if it improved cache
// performance. Compares three nursery sizes (cache-sized 64 KB, 256 KB,
// and a conventional 2 MB) against the Cheney baseline at 64-byte blocks.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace gcache;

int main(int Argc, char **Argv) {
  BenchArgs A = parseBenchArgs(Argc, Argv);
  benchHeader("Ablation 1 (§6)",
              "aggressive (cache-sized nursery) vs infrequent generational",
              A);

  Machine Slow = slowMachine();
  Machine Fast = fastMachine();
  struct Config {
    const char *Label;
    uint32_t NurseryBytes;
  };
  std::vector<Config> Configs = {{"aggressive-64kb", 64 << 10},
                                 {"gen-256kb", 256 << 10},
                                 {"gen-2mb", 2 << 20}};

  Table T({"program", "collector", "GCs", "words copied", "I_gc",
           "O_gc 64kb slow", "O_gc 64kb fast", "O_gc 1mb fast"});

  BenchUnitRunner Runner;
  for (const Workload *W : selectWorkloads(A)) {
    ExperimentOptions Ctrl = baseExperimentOptions(A);
    Ctrl.Grid = CacheGridKind::SizeSweep;
    std::printf("running %s (control)...\n", W->Name.c_str());
    Expected<ProgramRun> Ctl = Runner.run(W->Name + " (control)", *W, Ctrl);
    if (!Ctl.ok())
      continue;
    ProgramRun Control = Ctl.take();

    auto Report = [&](const char *Label, const ProgramRun &Run) {
      auto OGc = [&](uint32_t Size, const Machine &M) {
        return gcOverhead(gcInputsFor(*Run.Bank->find(Size, 64),
                                      *Control.Bank->find(Size, 64), Run, M));
      };
      const GcStats &S = Run.Stats.Gc;
      T.addRow({W->Name, Label, std::to_string(S.Collections),
                fmtCount(S.WordsCopied), fmtCount(S.Instructions),
                fmtPercent(OGc(64 << 10, Slow)),
                fmtPercent(OGc(64 << 10, Fast)),
                fmtPercent(OGc(1 << 20, Fast))});
    };

    uint32_t Semispace = semispaceFor(Control);
    ExperimentOptions Cheney = Ctrl;
    Cheney.Gc = GcKind::Cheney;
    Cheney.SemispaceBytes = Semispace;
    std::printf("running %s (cheney)...\n", W->Name.c_str());
    Expected<ProgramRun> CheneyRun =
        Runner.run(W->Name + " (cheney)", *W, Cheney);
    if (CheneyRun.ok())
      Report("cheney", *CheneyRun);

    uint32_t OldSemi = static_cast<uint32_t>(
        (std::max<uint64_t>(Control.AllocBytes / 3, 1u << 20) + 0xffff) &
          ~0xffffull);
    for (const Config &C : Configs) {
      ExperimentOptions Gen = Ctrl;
      Gen.Gc = GcKind::Generational;
      Gen.SemispaceBytes = Semispace;
      Gen.Generational.NurseryBytes = C.NurseryBytes;
      Gen.Generational.OldSemispaceBytes = OldSemi;
      std::printf("running %s (%s)...\n", W->Name.c_str(), C.Label);
      Expected<ProgramRun> Run =
          Runner.run(W->Name + " (" + C.Label + ")", *W, Gen);
      if (Run.ok())
        Report(C.Label, *Run);
    }
  }
  printTable(T, A);
  std::printf("\nExpected: the aggressive configuration collects far more "
              "often, copies more, and its added I_gc outweighs any miss "
              "reduction — O_gc(aggressive) > O_gc(gen-2mb).\n");
  return Runner.finish();
}
