//===- ext1_multilevel.cpp - §4 future work: two-level caches -----------------===//
//
// The paper's §4 defers multi-level caches to future work while
// conjecturing that its results extend to them. This extension tests the
// conjecture: the five programs run (no GC) against two-level hierarchies
// pairing a small on-chip L1 (8-64 KB, 32-byte blocks) with a 1 MB L2
// (64-byte blocks), on the fast processor where hierarchy matters.
//
// Expected: the combined overhead of (small L1 + big L2) lands close to
// the single-level big-cache overhead — i.e. the paper's single-level
// conclusions carry over, because the allocation wave that misses in L1
// mostly hits in L2.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gcache/memsys/MultiLevelCache.h"

using namespace gcache;

int main(int Argc, char **Argv) {
  BenchArgs A = parseBenchArgs(Argc, Argv);
  benchHeader("Extension 1 (§4 future work)",
              "two-level cache hierarchies, no GC, fast processor", A);

  std::vector<uint32_t> L1Sizes = {8u << 10, 16u << 10, 32u << 10,
                                   64u << 10};
  Machine Fast = fastMachine();
  L2Timing L2T;

  Table T({"program", "L1 8kb", "L1 16kb", "L1 32kb", "L1 64kb",
           "single 1mb", "single 64kb"});

  BenchUnitRunner Runner;
  for (const Workload *W : selectWorkloads(A)) {
    // One run feeds all hierarchies plus two single-level references.
    std::vector<std::unique_ptr<MultiLevelCache>> Levels;
    for (uint32_t L1Size : L1Sizes) {
      CacheConfig L1C, L2C;
      L1C.SizeBytes = L1Size;
      L1C.BlockBytes = 32;
      L2C.SizeBytes = 1 << 20;
      L2C.BlockBytes = 64;
      Levels.push_back(std::make_unique<MultiLevelCache>(L1C, L2C));
    }
    Cache Single1mb({.SizeBytes = 1 << 20, .BlockBytes = 64});
    Cache Single64kb({.SizeBytes = 64 << 10, .BlockBytes = 32});
    // These ride as extra sinks, outside any bank, so the validation
    // flags are applied directly.
    if (A.CrossCheckEvery) {
      for (auto &L : Levels)
        L->enableCrossCheck(A.CrossCheckEvery);
      Single1mb.enableCrossCheck(A.CrossCheckEvery);
      Single64kb.enableCrossCheck(A.CrossCheckEvery);
    }

    ExperimentOptions O = baseExperimentOptions(A);
    O.Grid = CacheGridKind::None;
    for (auto &L : Levels)
      O.ExtraSinks.push_back(L.get());
    O.ExtraSinks.push_back(&Single1mb);
    O.ExtraSinks.push_back(&Single64kb);
    std::printf("running %s...\n", W->Name.c_str());
    Expected<ProgramRun> R = Runner.run(W->Name, *W, O);
    if (!R.ok())
      continue;
    ProgramRun Run = R.take();

    if (A.CrossCheckEvery || A.Audit) {
      Status V;
      for (auto &L : Levels) {
        if (A.CrossCheckEvery && V.ok())
          V = L->crossCheckNow();
        if (A.Audit && V.ok())
          V = L->auditState();
      }
      if (A.Audit && V.ok())
        V = Single1mb.auditState();
      if (A.Audit && V.ok())
        V = Single64kb.auditState();
      if (!V.ok()) {
        Runner.recordFailure(W->Name + " validation", V);
        continue;
      }
    }

    std::vector<std::string> Row = {W->Name};
    for (auto &L : Levels)
      Row.push_back(fmtPercent(L->overhead(Fast.Memory, Fast.Processor, L2T,
                                           Run.Stats.Instructions)));
    Row.push_back(
        fmtPercent(controlOverhead(Single1mb, Run, Fast)));
    Row.push_back(
        fmtPercent(controlOverhead(Single64kb, Run, Fast)));
    T.addRow(Row);
  }
  std::printf("\n");
  printTable(T, A);
  std::printf("\nReading the table: two-level overheads should track the "
              "single-level 1mb column far more closely than the 64kb one "
              "— the paper's conjecture that its results extend to "
              "hierarchies.\n");
  return Runner.finish();
}
