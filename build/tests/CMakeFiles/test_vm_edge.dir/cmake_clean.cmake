file(REMOVE_RECURSE
  "CMakeFiles/test_vm_edge.dir/test_vm_edge.cpp.o"
  "CMakeFiles/test_vm_edge.dir/test_vm_edge.cpp.o.d"
  "test_vm_edge"
  "test_vm_edge.pdb"
  "test_vm_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
