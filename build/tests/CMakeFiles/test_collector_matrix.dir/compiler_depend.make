# Empty compiler generated dependencies file for test_collector_matrix.
# This may be replaced when dependencies are built.
