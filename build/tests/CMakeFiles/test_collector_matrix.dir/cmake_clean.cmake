file(REMOVE_RECURSE
  "CMakeFiles/test_collector_matrix.dir/test_collector_matrix.cpp.o"
  "CMakeFiles/test_collector_matrix.dir/test_collector_matrix.cpp.o.d"
  "test_collector_matrix"
  "test_collector_matrix.pdb"
  "test_collector_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collector_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
