# Empty dependencies file for test_vm_eval.
# This may be replaced when dependencies are built.
