file(REMOVE_RECURSE
  "CMakeFiles/test_vm_eval.dir/test_vm_eval.cpp.o"
  "CMakeFiles/test_vm_eval.dir/test_vm_eval.cpp.o.d"
  "test_vm_eval"
  "test_vm_eval.pdb"
  "test_vm_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
