file(REMOVE_RECURSE
  "CMakeFiles/test_reader_compiler.dir/test_reader_compiler.cpp.o"
  "CMakeFiles/test_reader_compiler.dir/test_reader_compiler.cpp.o.d"
  "test_reader_compiler"
  "test_reader_compiler.pdb"
  "test_reader_compiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reader_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
