file(REMOVE_RECURSE
  "CMakeFiles/test_marksweep.dir/test_marksweep.cpp.o"
  "CMakeFiles/test_marksweep.dir/test_marksweep.cpp.o.d"
  "test_marksweep"
  "test_marksweep.pdb"
  "test_marksweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_marksweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
