# Empty dependencies file for test_marksweep.
# This may be replaced when dependencies are built.
