# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_vm_eval[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_memsys[1]_include.cmake")
include("/root/repo/build/tests/test_heap[1]_include.cmake")
include("/root/repo/build/tests/test_gc[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_reader_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_multilevel[1]_include.cmake")
include("/root/repo/build/tests/test_vm_edge[1]_include.cmake")
include("/root/repo/build/tests/test_marksweep[1]_include.cmake")
include("/root/repo/build/tests/test_collector_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_primitives[1]_include.cmake")
