# Empty compiler generated dependencies file for gcache_support.
# This may be replaced when dependencies are built.
