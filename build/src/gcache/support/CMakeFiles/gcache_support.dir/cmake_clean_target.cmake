file(REMOVE_RECURSE
  "libgcache_support.a"
)
