
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcache/support/Options.cpp" "src/gcache/support/CMakeFiles/gcache_support.dir/Options.cpp.o" "gcc" "src/gcache/support/CMakeFiles/gcache_support.dir/Options.cpp.o.d"
  "/root/repo/src/gcache/support/Stats.cpp" "src/gcache/support/CMakeFiles/gcache_support.dir/Stats.cpp.o" "gcc" "src/gcache/support/CMakeFiles/gcache_support.dir/Stats.cpp.o.d"
  "/root/repo/src/gcache/support/Table.cpp" "src/gcache/support/CMakeFiles/gcache_support.dir/Table.cpp.o" "gcc" "src/gcache/support/CMakeFiles/gcache_support.dir/Table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
