file(REMOVE_RECURSE
  "CMakeFiles/gcache_support.dir/Options.cpp.o"
  "CMakeFiles/gcache_support.dir/Options.cpp.o.d"
  "CMakeFiles/gcache_support.dir/Stats.cpp.o"
  "CMakeFiles/gcache_support.dir/Stats.cpp.o.d"
  "CMakeFiles/gcache_support.dir/Table.cpp.o"
  "CMakeFiles/gcache_support.dir/Table.cpp.o.d"
  "libgcache_support.a"
  "libgcache_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcache_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
