file(REMOVE_RECURSE
  "CMakeFiles/gcache_memsys.dir/Cache.cpp.o"
  "CMakeFiles/gcache_memsys.dir/Cache.cpp.o.d"
  "CMakeFiles/gcache_memsys.dir/CacheBank.cpp.o"
  "CMakeFiles/gcache_memsys.dir/CacheBank.cpp.o.d"
  "CMakeFiles/gcache_memsys.dir/CacheConfig.cpp.o"
  "CMakeFiles/gcache_memsys.dir/CacheConfig.cpp.o.d"
  "CMakeFiles/gcache_memsys.dir/MemoryTiming.cpp.o"
  "CMakeFiles/gcache_memsys.dir/MemoryTiming.cpp.o.d"
  "CMakeFiles/gcache_memsys.dir/MultiLevelCache.cpp.o"
  "CMakeFiles/gcache_memsys.dir/MultiLevelCache.cpp.o.d"
  "CMakeFiles/gcache_memsys.dir/Overhead.cpp.o"
  "CMakeFiles/gcache_memsys.dir/Overhead.cpp.o.d"
  "libgcache_memsys.a"
  "libgcache_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcache_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
