# Empty compiler generated dependencies file for gcache_memsys.
# This may be replaced when dependencies are built.
