file(REMOVE_RECURSE
  "libgcache_memsys.a"
)
