
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcache/memsys/Cache.cpp" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/Cache.cpp.o" "gcc" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/Cache.cpp.o.d"
  "/root/repo/src/gcache/memsys/CacheBank.cpp" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/CacheBank.cpp.o" "gcc" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/CacheBank.cpp.o.d"
  "/root/repo/src/gcache/memsys/CacheConfig.cpp" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/CacheConfig.cpp.o" "gcc" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/CacheConfig.cpp.o.d"
  "/root/repo/src/gcache/memsys/MemoryTiming.cpp" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/MemoryTiming.cpp.o" "gcc" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/MemoryTiming.cpp.o.d"
  "/root/repo/src/gcache/memsys/MultiLevelCache.cpp" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/MultiLevelCache.cpp.o" "gcc" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/MultiLevelCache.cpp.o.d"
  "/root/repo/src/gcache/memsys/Overhead.cpp" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/Overhead.cpp.o" "gcc" "src/gcache/memsys/CMakeFiles/gcache_memsys.dir/Overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gcache/trace/CMakeFiles/gcache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/support/CMakeFiles/gcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
