# Empty dependencies file for gcache_vm.
# This may be replaced when dependencies are built.
