file(REMOVE_RECURSE
  "CMakeFiles/gcache_vm.dir/Bytecode.cpp.o"
  "CMakeFiles/gcache_vm.dir/Bytecode.cpp.o.d"
  "CMakeFiles/gcache_vm.dir/Compiler.cpp.o"
  "CMakeFiles/gcache_vm.dir/Compiler.cpp.o.d"
  "CMakeFiles/gcache_vm.dir/Primitives.cpp.o"
  "CMakeFiles/gcache_vm.dir/Primitives.cpp.o.d"
  "CMakeFiles/gcache_vm.dir/SchemeSystem.cpp.o"
  "CMakeFiles/gcache_vm.dir/SchemeSystem.cpp.o.d"
  "CMakeFiles/gcache_vm.dir/Sexpr.cpp.o"
  "CMakeFiles/gcache_vm.dir/Sexpr.cpp.o.d"
  "CMakeFiles/gcache_vm.dir/VM.cpp.o"
  "CMakeFiles/gcache_vm.dir/VM.cpp.o.d"
  "libgcache_vm.a"
  "libgcache_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcache_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
