
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcache/vm/Bytecode.cpp" "src/gcache/vm/CMakeFiles/gcache_vm.dir/Bytecode.cpp.o" "gcc" "src/gcache/vm/CMakeFiles/gcache_vm.dir/Bytecode.cpp.o.d"
  "/root/repo/src/gcache/vm/Compiler.cpp" "src/gcache/vm/CMakeFiles/gcache_vm.dir/Compiler.cpp.o" "gcc" "src/gcache/vm/CMakeFiles/gcache_vm.dir/Compiler.cpp.o.d"
  "/root/repo/src/gcache/vm/Primitives.cpp" "src/gcache/vm/CMakeFiles/gcache_vm.dir/Primitives.cpp.o" "gcc" "src/gcache/vm/CMakeFiles/gcache_vm.dir/Primitives.cpp.o.d"
  "/root/repo/src/gcache/vm/SchemeSystem.cpp" "src/gcache/vm/CMakeFiles/gcache_vm.dir/SchemeSystem.cpp.o" "gcc" "src/gcache/vm/CMakeFiles/gcache_vm.dir/SchemeSystem.cpp.o.d"
  "/root/repo/src/gcache/vm/Sexpr.cpp" "src/gcache/vm/CMakeFiles/gcache_vm.dir/Sexpr.cpp.o" "gcc" "src/gcache/vm/CMakeFiles/gcache_vm.dir/Sexpr.cpp.o.d"
  "/root/repo/src/gcache/vm/VM.cpp" "src/gcache/vm/CMakeFiles/gcache_vm.dir/VM.cpp.o" "gcc" "src/gcache/vm/CMakeFiles/gcache_vm.dir/VM.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gcache/gc/CMakeFiles/gcache_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/heap/CMakeFiles/gcache_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/trace/CMakeFiles/gcache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/support/CMakeFiles/gcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
