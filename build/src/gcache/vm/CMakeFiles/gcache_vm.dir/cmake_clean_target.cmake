file(REMOVE_RECURSE
  "libgcache_vm.a"
)
