file(REMOVE_RECURSE
  "CMakeFiles/gcache_analysis.dir/BlockTracker.cpp.o"
  "CMakeFiles/gcache_analysis.dir/BlockTracker.cpp.o.d"
  "CMakeFiles/gcache_analysis.dir/LocalMissStats.cpp.o"
  "CMakeFiles/gcache_analysis.dir/LocalMissStats.cpp.o.d"
  "CMakeFiles/gcache_analysis.dir/MissPlot.cpp.o"
  "CMakeFiles/gcache_analysis.dir/MissPlot.cpp.o.d"
  "libgcache_analysis.a"
  "libgcache_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcache_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
