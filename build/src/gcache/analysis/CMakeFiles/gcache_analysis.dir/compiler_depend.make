# Empty compiler generated dependencies file for gcache_analysis.
# This may be replaced when dependencies are built.
