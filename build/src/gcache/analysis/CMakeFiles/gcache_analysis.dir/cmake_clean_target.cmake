file(REMOVE_RECURSE
  "libgcache_analysis.a"
)
