
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcache/analysis/BlockTracker.cpp" "src/gcache/analysis/CMakeFiles/gcache_analysis.dir/BlockTracker.cpp.o" "gcc" "src/gcache/analysis/CMakeFiles/gcache_analysis.dir/BlockTracker.cpp.o.d"
  "/root/repo/src/gcache/analysis/LocalMissStats.cpp" "src/gcache/analysis/CMakeFiles/gcache_analysis.dir/LocalMissStats.cpp.o" "gcc" "src/gcache/analysis/CMakeFiles/gcache_analysis.dir/LocalMissStats.cpp.o.d"
  "/root/repo/src/gcache/analysis/MissPlot.cpp" "src/gcache/analysis/CMakeFiles/gcache_analysis.dir/MissPlot.cpp.o" "gcc" "src/gcache/analysis/CMakeFiles/gcache_analysis.dir/MissPlot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gcache/memsys/CMakeFiles/gcache_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/heap/CMakeFiles/gcache_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/trace/CMakeFiles/gcache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/support/CMakeFiles/gcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
