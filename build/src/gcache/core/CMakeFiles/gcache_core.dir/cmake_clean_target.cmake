file(REMOVE_RECURSE
  "libgcache_core.a"
)
