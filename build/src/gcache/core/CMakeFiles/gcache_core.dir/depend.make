# Empty dependencies file for gcache_core.
# This may be replaced when dependencies are built.
