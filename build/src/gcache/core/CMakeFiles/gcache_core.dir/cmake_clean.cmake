file(REMOVE_RECURSE
  "CMakeFiles/gcache_core.dir/Experiment.cpp.o"
  "CMakeFiles/gcache_core.dir/Experiment.cpp.o.d"
  "libgcache_core.a"
  "libgcache_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcache_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
