
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcache/core/Experiment.cpp" "src/gcache/core/CMakeFiles/gcache_core.dir/Experiment.cpp.o" "gcc" "src/gcache/core/CMakeFiles/gcache_core.dir/Experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gcache/vm/CMakeFiles/gcache_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/workloads/CMakeFiles/gcache_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/gc/CMakeFiles/gcache_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/heap/CMakeFiles/gcache_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/memsys/CMakeFiles/gcache_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/analysis/CMakeFiles/gcache_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/trace/CMakeFiles/gcache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/support/CMakeFiles/gcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
