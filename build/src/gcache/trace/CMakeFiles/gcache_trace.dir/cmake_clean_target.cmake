file(REMOVE_RECURSE
  "libgcache_trace.a"
)
