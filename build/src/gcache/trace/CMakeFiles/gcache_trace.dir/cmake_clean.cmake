file(REMOVE_RECURSE
  "CMakeFiles/gcache_trace.dir/Sinks.cpp.o"
  "CMakeFiles/gcache_trace.dir/Sinks.cpp.o.d"
  "CMakeFiles/gcache_trace.dir/TraceFile.cpp.o"
  "CMakeFiles/gcache_trace.dir/TraceFile.cpp.o.d"
  "libgcache_trace.a"
  "libgcache_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcache_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
