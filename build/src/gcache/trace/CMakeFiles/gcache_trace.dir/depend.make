# Empty dependencies file for gcache_trace.
# This may be replaced when dependencies are built.
