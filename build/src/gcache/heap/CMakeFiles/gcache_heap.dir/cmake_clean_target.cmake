file(REMOVE_RECURSE
  "libgcache_heap.a"
)
