
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcache/heap/Heap.cpp" "src/gcache/heap/CMakeFiles/gcache_heap.dir/Heap.cpp.o" "gcc" "src/gcache/heap/CMakeFiles/gcache_heap.dir/Heap.cpp.o.d"
  "/root/repo/src/gcache/heap/HeapVerifier.cpp" "src/gcache/heap/CMakeFiles/gcache_heap.dir/HeapVerifier.cpp.o" "gcc" "src/gcache/heap/CMakeFiles/gcache_heap.dir/HeapVerifier.cpp.o.d"
  "/root/repo/src/gcache/heap/ObjectModel.cpp" "src/gcache/heap/CMakeFiles/gcache_heap.dir/ObjectModel.cpp.o" "gcc" "src/gcache/heap/CMakeFiles/gcache_heap.dir/ObjectModel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gcache/trace/CMakeFiles/gcache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gcache/support/CMakeFiles/gcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
