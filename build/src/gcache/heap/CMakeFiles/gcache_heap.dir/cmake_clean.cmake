file(REMOVE_RECURSE
  "CMakeFiles/gcache_heap.dir/Heap.cpp.o"
  "CMakeFiles/gcache_heap.dir/Heap.cpp.o.d"
  "CMakeFiles/gcache_heap.dir/HeapVerifier.cpp.o"
  "CMakeFiles/gcache_heap.dir/HeapVerifier.cpp.o.d"
  "CMakeFiles/gcache_heap.dir/ObjectModel.cpp.o"
  "CMakeFiles/gcache_heap.dir/ObjectModel.cpp.o.d"
  "libgcache_heap.a"
  "libgcache_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcache_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
