# Empty compiler generated dependencies file for gcache_heap.
# This may be replaced when dependencies are built.
