file(REMOVE_RECURSE
  "libgcache_gc.a"
)
