# Empty compiler generated dependencies file for gcache_gc.
# This may be replaced when dependencies are built.
