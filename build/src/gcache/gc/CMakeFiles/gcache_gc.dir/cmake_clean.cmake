file(REMOVE_RECURSE
  "CMakeFiles/gcache_gc.dir/CheneyCollector.cpp.o"
  "CMakeFiles/gcache_gc.dir/CheneyCollector.cpp.o.d"
  "CMakeFiles/gcache_gc.dir/Collector.cpp.o"
  "CMakeFiles/gcache_gc.dir/Collector.cpp.o.d"
  "CMakeFiles/gcache_gc.dir/GenerationalCollector.cpp.o"
  "CMakeFiles/gcache_gc.dir/GenerationalCollector.cpp.o.d"
  "CMakeFiles/gcache_gc.dir/MarkSweepCollector.cpp.o"
  "CMakeFiles/gcache_gc.dir/MarkSweepCollector.cpp.o.d"
  "libgcache_gc.a"
  "libgcache_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcache_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
