# Empty dependencies file for gcache_workloads.
# This may be replaced when dependencies are built.
