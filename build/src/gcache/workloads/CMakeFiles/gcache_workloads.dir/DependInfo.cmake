
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcache/workloads/Gambit.cpp" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Gambit.cpp.o" "gcc" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Gambit.cpp.o.d"
  "/root/repo/src/gcache/workloads/Imps.cpp" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Imps.cpp.o" "gcc" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Imps.cpp.o.d"
  "/root/repo/src/gcache/workloads/Lp.cpp" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Lp.cpp.o" "gcc" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Lp.cpp.o.d"
  "/root/repo/src/gcache/workloads/Nbody.cpp" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Nbody.cpp.o" "gcc" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Nbody.cpp.o.d"
  "/root/repo/src/gcache/workloads/Orbit.cpp" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Orbit.cpp.o" "gcc" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Orbit.cpp.o.d"
  "/root/repo/src/gcache/workloads/Workloads.cpp" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Workloads.cpp.o" "gcc" "src/gcache/workloads/CMakeFiles/gcache_workloads.dir/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gcache/support/CMakeFiles/gcache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
