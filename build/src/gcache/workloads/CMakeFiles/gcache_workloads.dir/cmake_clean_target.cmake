file(REMOVE_RECURSE
  "libgcache_workloads.a"
)
