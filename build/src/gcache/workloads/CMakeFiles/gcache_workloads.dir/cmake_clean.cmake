file(REMOVE_RECURSE
  "CMakeFiles/gcache_workloads.dir/Gambit.cpp.o"
  "CMakeFiles/gcache_workloads.dir/Gambit.cpp.o.d"
  "CMakeFiles/gcache_workloads.dir/Imps.cpp.o"
  "CMakeFiles/gcache_workloads.dir/Imps.cpp.o.d"
  "CMakeFiles/gcache_workloads.dir/Lp.cpp.o"
  "CMakeFiles/gcache_workloads.dir/Lp.cpp.o.d"
  "CMakeFiles/gcache_workloads.dir/Nbody.cpp.o"
  "CMakeFiles/gcache_workloads.dir/Nbody.cpp.o.d"
  "CMakeFiles/gcache_workloads.dir/Orbit.cpp.o"
  "CMakeFiles/gcache_workloads.dir/Orbit.cpp.o.d"
  "CMakeFiles/gcache_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/gcache_workloads.dir/Workloads.cpp.o.d"
  "libgcache_workloads.a"
  "libgcache_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcache_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
