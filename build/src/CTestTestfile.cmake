# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("gcache/support")
subdirs("gcache/trace")
subdirs("gcache/memsys")
subdirs("gcache/heap")
subdirs("gcache/gc")
subdirs("gcache/vm")
subdirs("gcache/workloads")
subdirs("gcache/analysis")
subdirs("gcache/core")
