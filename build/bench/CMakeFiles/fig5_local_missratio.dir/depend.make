# Empty dependencies file for fig5_local_missratio.
# This may be replaced when dependencies are built.
