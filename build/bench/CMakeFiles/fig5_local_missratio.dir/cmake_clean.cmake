file(REMOVE_RECURSE
  "CMakeFiles/fig5_local_missratio.dir/fig5_local_missratio.cpp.o"
  "CMakeFiles/fig5_local_missratio.dir/fig5_local_missratio.cpp.o.d"
  "fig5_local_missratio"
  "fig5_local_missratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_local_missratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
