# Empty dependencies file for fig8_orbit_128k.
# This may be replaced when dependencies are built.
