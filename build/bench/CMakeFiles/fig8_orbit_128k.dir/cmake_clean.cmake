file(REMOVE_RECURSE
  "CMakeFiles/fig8_orbit_128k.dir/fig8_orbit_128k.cpp.o"
  "CMakeFiles/fig8_orbit_128k.dir/fig8_orbit_128k.cpp.o.d"
  "fig8_orbit_128k"
  "fig8_orbit_128k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_orbit_128k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
