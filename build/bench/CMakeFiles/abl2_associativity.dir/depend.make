# Empty dependencies file for abl2_associativity.
# This may be replaced when dependencies are built.
