file(REMOVE_RECURSE
  "CMakeFiles/abl2_associativity.dir/abl2_associativity.cpp.o"
  "CMakeFiles/abl2_associativity.dir/abl2_associativity.cpp.o.d"
  "abl2_associativity"
  "abl2_associativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
