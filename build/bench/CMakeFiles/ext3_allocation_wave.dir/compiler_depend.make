# Empty compiler generated dependencies file for ext3_allocation_wave.
# This may be replaced when dependencies are built.
