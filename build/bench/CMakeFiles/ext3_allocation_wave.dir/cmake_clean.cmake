file(REMOVE_RECURSE
  "CMakeFiles/ext3_allocation_wave.dir/ext3_allocation_wave.cpp.o"
  "CMakeFiles/ext3_allocation_wave.dir/ext3_allocation_wave.cpp.o.d"
  "ext3_allocation_wave"
  "ext3_allocation_wave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext3_allocation_wave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
