file(REMOVE_RECURSE
  "CMakeFiles/fig4_lifetimes.dir/fig4_lifetimes.cpp.o"
  "CMakeFiles/fig4_lifetimes.dir/fig4_lifetimes.cpp.o.d"
  "fig4_lifetimes"
  "fig4_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
