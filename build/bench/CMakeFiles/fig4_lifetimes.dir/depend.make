# Empty dependencies file for fig4_lifetimes.
# This may be replaced when dependencies are built.
