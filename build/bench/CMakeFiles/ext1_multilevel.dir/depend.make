# Empty dependencies file for ext1_multilevel.
# This may be replaced when dependencies are built.
