file(REMOVE_RECURSE
  "CMakeFiles/ext1_multilevel.dir/ext1_multilevel.cpp.o"
  "CMakeFiles/ext1_multilevel.dir/ext1_multilevel.cpp.o.d"
  "ext1_multilevel"
  "ext1_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext1_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
