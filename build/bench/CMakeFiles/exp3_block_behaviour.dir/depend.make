# Empty dependencies file for exp3_block_behaviour.
# This may be replaced when dependencies are built.
