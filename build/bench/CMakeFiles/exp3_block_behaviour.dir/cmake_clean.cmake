file(REMOVE_RECURSE
  "CMakeFiles/exp3_block_behaviour.dir/exp3_block_behaviour.cpp.o"
  "CMakeFiles/exp3_block_behaviour.dir/exp3_block_behaviour.cpp.o.d"
  "exp3_block_behaviour"
  "exp3_block_behaviour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp3_block_behaviour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
