file(REMOVE_RECURSE
  "CMakeFiles/abl1_aggressive.dir/abl1_aggressive.cpp.o"
  "CMakeFiles/abl1_aggressive.dir/abl1_aggressive.cpp.o.d"
  "abl1_aggressive"
  "abl1_aggressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_aggressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
