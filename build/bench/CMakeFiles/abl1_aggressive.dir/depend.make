# Empty dependencies file for abl1_aggressive.
# This may be replaced when dependencies are built.
