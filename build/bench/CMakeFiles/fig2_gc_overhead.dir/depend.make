# Empty dependencies file for fig2_gc_overhead.
# This may be replaced when dependencies are built.
