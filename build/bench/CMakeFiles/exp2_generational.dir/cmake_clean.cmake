file(REMOVE_RECURSE
  "CMakeFiles/exp2_generational.dir/exp2_generational.cpp.o"
  "CMakeFiles/exp2_generational.dir/exp2_generational.cpp.o.d"
  "exp2_generational"
  "exp2_generational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp2_generational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
