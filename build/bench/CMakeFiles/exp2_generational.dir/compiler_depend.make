# Empty compiler generated dependencies file for exp2_generational.
# This may be replaced when dependencies are built.
