file(REMOVE_RECURSE
  "CMakeFiles/fig7_gambit_spread.dir/fig7_gambit_spread.cpp.o"
  "CMakeFiles/fig7_gambit_spread.dir/fig7_gambit_spread.cpp.o.d"
  "fig7_gambit_spread"
  "fig7_gambit_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gambit_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
