# Empty compiler generated dependencies file for fig7_gambit_spread.
# This may be replaced when dependencies are built.
