# Empty compiler generated dependencies file for fig3_missplot.
# This may be replaced when dependencies are built.
