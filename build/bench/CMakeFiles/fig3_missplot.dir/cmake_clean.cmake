file(REMOVE_RECURSE
  "CMakeFiles/fig3_missplot.dir/fig3_missplot.cpp.o"
  "CMakeFiles/fig3_missplot.dir/fig3_missplot.cpp.o.d"
  "fig3_missplot"
  "fig3_missplot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_missplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
