file(REMOVE_RECURSE
  "CMakeFiles/ext2_layout.dir/ext2_layout.cpp.o"
  "CMakeFiles/ext2_layout.dir/ext2_layout.cpp.o.d"
  "ext2_layout"
  "ext2_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext2_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
