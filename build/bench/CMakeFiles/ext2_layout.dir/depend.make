# Empty dependencies file for ext2_layout.
# This may be replaced when dependencies are built.
