# Empty compiler generated dependencies file for exp1_write_policy.
# This may be replaced when dependencies are built.
