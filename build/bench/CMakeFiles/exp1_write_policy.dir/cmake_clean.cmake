file(REMOVE_RECURSE
  "CMakeFiles/exp1_write_policy.dir/exp1_write_policy.cpp.o"
  "CMakeFiles/exp1_write_policy.dir/exp1_write_policy.cpp.o.d"
  "exp1_write_policy"
  "exp1_write_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp1_write_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
