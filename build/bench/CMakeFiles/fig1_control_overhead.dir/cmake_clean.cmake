file(REMOVE_RECURSE
  "CMakeFiles/fig1_control_overhead.dir/fig1_control_overhead.cpp.o"
  "CMakeFiles/fig1_control_overhead.dir/fig1_control_overhead.cpp.o.d"
  "fig1_control_overhead"
  "fig1_control_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_control_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
