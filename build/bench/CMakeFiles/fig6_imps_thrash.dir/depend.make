# Empty dependencies file for fig6_imps_thrash.
# This may be replaced when dependencies are built.
