file(REMOVE_RECURSE
  "CMakeFiles/fig6_imps_thrash.dir/fig6_imps_thrash.cpp.o"
  "CMakeFiles/fig6_imps_thrash.dir/fig6_imps_thrash.cpp.o.d"
  "fig6_imps_thrash"
  "fig6_imps_thrash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_imps_thrash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
