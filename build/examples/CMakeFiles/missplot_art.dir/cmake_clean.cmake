file(REMOVE_RECURSE
  "CMakeFiles/missplot_art.dir/missplot_art.cpp.o"
  "CMakeFiles/missplot_art.dir/missplot_art.cpp.o.d"
  "missplot_art"
  "missplot_art.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/missplot_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
