# Empty compiler generated dependencies file for missplot_art.
# This may be replaced when dependencies are built.
