//===- FuzzCheck.h - Property assertions for fuzz targets -------*- C++ -*-===//
//
// Part of the gcache project (Reinhold, PLDI 1994 reproduction).
//
// assert() disappears under NDEBUG, but fuzz properties must hold in
// every build the fuzzer runs in (CI builds RelWithDebInfo). FUZZ_CHECK
// prints the failed property and the target location, then aborts so the
// engine records the crashing input.
//
//===----------------------------------------------------------------------===//

#ifndef GCACHE_FUZZ_FUZZCHECK_H
#define GCACHE_FUZZ_FUZZCHECK_H

#include <cstdio>
#include <cstdlib>

#define FUZZ_CHECK(Cond, Why)                                                  \
  do {                                                                         \
    if (!(Cond)) {                                                             \
      std::fprintf(stderr, "FUZZ_CHECK failed at %s:%d: %s\n  property: %s\n", \
                   __FILE__, __LINE__, #Cond, Why);                            \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

#endif // GCACHE_FUZZ_FUZZCHECK_H
