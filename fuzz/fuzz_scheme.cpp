//===- fuzz_scheme.cpp - Fuzz target: Scheme reader and compiler --------------===//
//
// Part of the gcache project (Reinhold, PLDI 1994 reproduction).
//
// Property under test: the S-expression reader and the bytecode compiler
// must either reject arbitrary source text with a structured error
// (ReadResult::Error / StatusError(CompileError)) or process it — never
// crash, overflow the stack on deep nesting, or hang. Fuzzed programs
// are compiled but not executed: the VM has no step budget, so running
// attacker-chosen code could legitimately loop forever.
//
//===----------------------------------------------------------------------===//

#include "FuzzCheck.h"

#include "gcache/heap/Heap.h"
#include "gcache/support/Status.h"
#include "gcache/vm/Compiler.h"
#include "gcache/vm/Primitives.h"
#include "gcache/vm/Sexpr.h"
#include "gcache/vm/VM.h"

#include <cstdint>
#include <memory>
#include <string>

using namespace gcache;

namespace {

/// Compiled code objects accumulate in the VM, so the world is rebuilt
/// periodically to keep a long fuzz run's memory flat.
struct World {
  Heap H;
  VM M{H};
  World() { registerPrimitives(M); }
};

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  static std::unique_ptr<World> W;
  static unsigned InputsSinceReset = 0;
  if (!W || ++InputsSinceReset >= 256) {
    W = std::make_unique<World>();
    InputsSinceReset = 0;
  }

  // Cap the source length: reader and compiler are linear, but there is
  // no value in megabyte-scale mutations of small seeds.
  if (Size > (64u << 10))
    Size = 64u << 10;
  std::string Source(reinterpret_cast<const char *>(Data), Size);

  ReadResult R = readAll(Source);
  if (!R.Ok) {
    FUZZ_CHECK(!R.Error.empty(), "a rejected read must carry a message");
    return 0;
  }

  for (const Sexpr &Form : R.Data) {
    try {
      Compiler C(W->M);
      (void)C.compileToplevel(Form);
    } catch (const StatusError &E) {
      FUZZ_CHECK(!E.status().ok(),
                 "a compile rejection must carry a failed Status");
      // The compiler may leave the VM mid-definition; start clean.
      W = std::make_unique<World>();
      InputsSinceReset = 0;
      break;
    }
  }
  return 0;
}
