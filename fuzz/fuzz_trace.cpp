//===- fuzz_trace.cpp - Fuzz target: binary trace files -----------------------===//
//
// Part of the gcache project (Reinhold, PLDI 1994 reproduction).
//
// Property under test: TraceStream must either reject arbitrary bytes
// with a structured Status or decode them correctly — never crash, hang,
// or read out of bounds. Concretely:
//
//  - strict open and salvage open never crash on any input;
//  - an input the strict open accepts is accepted undamaged by salvage,
//    with the identical record stream;
//  - every salvaged stream replays cleanly into a cross-checked cache
//    (the oracle and the invariant audit both stay green), and its
//    salvage accounting (droppedBytes/droppedRecords) is consistent;
//  - the batched decode path (TraceStream::nextRefBatch) yields columns
//    that always pass BatchKernel::validate, and replaying them through
//    the batch kernel ends with counters identical to the scalar replay —
//    for any input and any batch capacity.
//
//===----------------------------------------------------------------------===//

#include "FuzzCheck.h"

#include "gcache/memsys/BatchKernel.h"
#include "gcache/memsys/Cache.h"
#include "gcache/trace/TraceFile.h"

#include <cstdint>
#include <vector>

using namespace gcache;

namespace {

const CacheConfig FuzzCacheConfig{.SizeBytes = 1 << 10, .BlockBytes = 32};

bool sameCounters(const Cache &A, const Cache &B, Phase P) {
  const CacheCounters &X = A.counters(P);
  const CacheCounters &Y = B.counters(P);
  return X.Loads == Y.Loads && X.Stores == Y.Stores &&
         X.FetchMisses == Y.FetchMisses &&
         X.NoFetchMisses == Y.NoFetchMisses && X.Writebacks == Y.Writebacks &&
         X.WriteThroughs == Y.WriteThroughs;
}

/// Replays every record of \p S into a tiny cross-checked cache and
/// checks the model invariants afterwards. Returns the cache so the
/// batched replay can be differenced against it.
Cache replayChecked(TraceStream &S) {
  Cache C(FuzzCacheConfig);
  C.enableCrossCheck(1);
  TraceRecord Rec;
  uint64_t Seen = 0;
  while (S.next(Rec)) {
    Rec.dispatch(C);
    ++Seen;
  }
  FUZZ_CHECK(Seen == S.recordCount(),
             "next() must deliver exactly recordCount() records");
  FUZZ_CHECK(C.crossCheckNow().ok(),
             "oracle must agree with the cache after any valid trace");
  FUZZ_CHECK(C.auditState().ok(),
             "cache invariants must hold after any valid trace");
  return C;
}

/// Replays \p S through the columnar path — nextRefBatch runs fed to
/// BatchKernel::run, markers dispatched scalar — and checks the result
/// against the scalar replay's cache.
void replayBatchedChecked(TraceStream &S, size_t BatchCap,
                          const Cache &Scalar) {
  Cache C(FuzzCacheConfig);
  RefColumns B;
  BatchIndex Idx;
  TraceRecord Rec;
  for (;;) {
    B.clear();
    size_t N = S.nextRefBatch(B, BatchCap);
    if (N != 0) {
      FUZZ_CHECK(BatchKernel::validate(B).ok(),
                 "trace-decoded columns must always validate");
      Idx.reset(&B);
      BatchKernel::run(C, B, Idx);
    }
    if (N == BatchCap)
      continue;
    if (!S.next(Rec))
      break;
    FUZZ_CHECK(Rec.Op != TraceRecord::Kind::Ref,
               "nextRefBatch must consume every run of refs completely");
    Rec.dispatch(C);
  }
  FUZZ_CHECK(S.recordIndex() == S.recordCount(),
             "batched decode must reach the exact end of the stream");
  FUZZ_CHECK(sameCounters(Scalar, C, Phase::Mutator) &&
                 sameCounters(Scalar, C, Phase::Collector),
             "batch kernel must match the scalar replay on any valid trace");
  FUZZ_CHECK(C.auditState().ok(),
             "cache invariants must hold after any batched replay");
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Bytes(Data, Data + Size);

  TraceStream Strict;
  Status StrictStatus = Strict.openBuffer(Bytes, /*Salvage=*/false);

  TraceStream Salvaged;
  Status SalvageStatus = Salvaged.openBuffer(Bytes, /*Salvage=*/true);

  if (StrictStatus.ok()) {
    // A file strict mode accepts is undamaged; salvage must agree in full.
    FUZZ_CHECK(SalvageStatus.ok(), "salvage must accept what strict accepts");
    FUZZ_CHECK(Salvaged.damage().ok(), "valid input must report no damage");
    FUZZ_CHECK(Salvaged.recordCount() == Strict.recordCount(),
               "salvage of a valid file must keep every record");
    FUZZ_CHECK(Strict.droppedBytes() == 0 && Strict.droppedRecords() == 0,
               "no salvage accounting on a valid file");
    (void)replayChecked(Strict);
  }

  if (SalvageStatus.ok()) {
    if (!Salvaged.damage().ok())
      // A missing-footer cut can drop zero bytes, but a cut can never be
      // accounted as larger than the input itself.
      FUZZ_CHECK(Salvaged.droppedBytes() <= Bytes.size(),
                 "cannot drop more bytes than the input holds");
    Cache Scalar = replayChecked(Salvaged);

    // Batch-kernel differential: the same bytes through the columnar
    // decode + batch kernel, with an input-derived batch capacity so the
    // fuzzer explores the segmentation space too.
    TraceStream Batched;
    FUZZ_CHECK(Batched.openBuffer(Bytes, /*Salvage=*/true).ok(),
               "salvage open must be deterministic");
    size_t BatchCap = 1 + (Size % 301);
    replayBatchedChecked(Batched, BatchCap, Scalar);
  }
  return 0;
}
