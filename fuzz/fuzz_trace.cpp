//===- fuzz_trace.cpp - Fuzz target: binary trace files -----------------------===//
//
// Part of the gcache project (Reinhold, PLDI 1994 reproduction).
//
// Property under test: TraceStream must either reject arbitrary bytes
// with a structured Status or decode them correctly — never crash, hang,
// or read out of bounds. Concretely:
//
//  - strict open and salvage open never crash on any input;
//  - an input the strict open accepts is accepted undamaged by salvage,
//    with the identical record stream;
//  - every salvaged stream replays cleanly into a cross-checked cache
//    (the oracle and the invariant audit both stay green), and its
//    salvage accounting (droppedBytes/droppedRecords) is consistent.
//
//===----------------------------------------------------------------------===//

#include "FuzzCheck.h"

#include "gcache/memsys/Cache.h"
#include "gcache/trace/TraceFile.h"

#include <cstdint>
#include <vector>

using namespace gcache;

namespace {

/// Replays every record of \p S into a tiny cross-checked cache and
/// checks the model invariants afterwards.
void replayChecked(TraceStream &S) {
  Cache C({.SizeBytes = 1 << 10, .BlockBytes = 32});
  C.enableCrossCheck(1);
  TraceRecord Rec;
  uint64_t Seen = 0;
  while (S.next(Rec)) {
    Rec.dispatch(C);
    ++Seen;
  }
  FUZZ_CHECK(Seen == S.recordCount(),
             "next() must deliver exactly recordCount() records");
  FUZZ_CHECK(C.crossCheckNow().ok(),
             "oracle must agree with the cache after any valid trace");
  FUZZ_CHECK(C.auditState().ok(),
             "cache invariants must hold after any valid trace");
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Bytes(Data, Data + Size);

  TraceStream Strict;
  Status StrictStatus = Strict.openBuffer(Bytes, /*Salvage=*/false);

  TraceStream Salvaged;
  Status SalvageStatus = Salvaged.openBuffer(Bytes, /*Salvage=*/true);

  if (StrictStatus.ok()) {
    // A file strict mode accepts is undamaged; salvage must agree in full.
    FUZZ_CHECK(SalvageStatus.ok(), "salvage must accept what strict accepts");
    FUZZ_CHECK(Salvaged.damage().ok(), "valid input must report no damage");
    FUZZ_CHECK(Salvaged.recordCount() == Strict.recordCount(),
               "salvage of a valid file must keep every record");
    FUZZ_CHECK(Strict.droppedBytes() == 0 && Strict.droppedRecords() == 0,
               "no salvage accounting on a valid file");
    replayChecked(Strict);
  }

  if (SalvageStatus.ok()) {
    if (!Salvaged.damage().ok())
      // A missing-footer cut can drop zero bytes, but a cut can never be
      // accounted as larger than the input itself.
      FUZZ_CHECK(Salvaged.droppedBytes() <= Bytes.size(),
                 "cannot drop more bytes than the input holds");
    replayChecked(Salvaged);
  }
  return 0;
}
