//===- make_corpus.cpp - Generate binary fuzz-corpus seeds --------------------===//
//
// Part of the gcache project (Reinhold, PLDI 1994 reproduction).
//
// Writes small, *valid* trace and snapshot files through the real
// writers, so the checked-in corpus seeds exercise the accept paths of
// the fuzz targets (mutation from a valid seed reaches far deeper than
// mutation from garbage). Scheme seeds are plain text and are checked in
// directly.
//
// Usage: make_corpus <trace-dir> <snapshot-dir>
//
//===----------------------------------------------------------------------===//

#include "gcache/memsys/Cache.h"
#include "gcache/support/Snapshot.h"
#include "gcache/trace/TraceFile.h"

#include <cstdio>
#include <string>

using namespace gcache;

namespace {

int die(const Status &S) {
  std::fprintf(stderr, "make_corpus: %s\n", S.message().c_str());
  return 1;
}

/// A small but representative event stream: both phases, both access
/// kinds, allocations, and a GC pause.
void emitEvents(TraceSink &Out) {
  for (uint32_t I = 0; I != 64; ++I) {
    Ref R;
    R.Addr = 0x1000 + I * 12;
    R.Kind = (I % 3) ? AccessKind::Load : AccessKind::Store;
    R.ExecPhase = Phase::Mutator;
    Out.onRef(R);
    if (I % 8 == 0)
      Out.onAlloc(0x8000 + I * 16, 16);
  }
  Out.onGcBegin();
  for (uint32_t I = 0; I != 16; ++I) {
    Ref R;
    R.Addr = 0x2000 + I * 8;
    R.Kind = AccessKind::Load;
    R.ExecPhase = Phase::Collector;
    Out.onRef(R);
  }
  Out.onGcEnd();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 3) {
    std::fprintf(stderr, "usage: %s <trace-dir> <snapshot-dir>\n", Argv[0]);
    return 2;
  }
  std::string TraceDir = Argv[1], SnapDir = Argv[2];

  // Seed 1: a complete valid v2 trace.
  {
    TraceWriter W;
    if (Status S = W.open(TraceDir + "/valid_v2.gctrace"); !S.ok())
      return die(S);
    emitEvents(W);
    if (Status S = W.close(); !S.ok())
      return die(S);
  }
  // Seed 2: an empty (but valid) trace.
  {
    TraceWriter W;
    if (Status S = W.open(TraceDir + "/empty.gctrace"); !S.ok())
      return die(S);
    if (Status S = W.close(); !S.ok())
      return die(S);
  }

  // Seed 3: a snapshot holding real cache state plus an unknown section
  // (readers must skip sections they do not recognize).
  {
    Cache C({.SizeBytes = 1 << 10, .BlockBytes = 32});
    emitEvents(C);
    SnapshotWriter W;
    W.beginSection("cache-state");
    C.saveState(W);
    W.beginSection("experimental-telemetry");
    W.putU32(7);
    W.putString("not a section this tree knows about");
    if (Status S = W.writeFile(SnapDir + "/cache_state.gcsnap"); !S.ok())
      return die(S);
  }
  // Seed 4: a minimal empty container.
  {
    SnapshotWriter W;
    if (Status S = W.writeFile(SnapDir + "/empty.gcsnap"); !S.ok())
      return die(S);
  }

  std::printf("corpus seeds written to %s and %s\n", TraceDir.c_str(),
              SnapDir.c_str());
  return 0;
}
