//===- fuzz_snapshot.cpp - Fuzz target: snapshot containers -------------------===//
//
// Part of the gcache project (Reinhold, PLDI 1994 reproduction).
//
// Property under test: SnapshotReader and the component load paths must
// either reject arbitrary bytes with a structured Status or decode them
// correctly — never crash, hang, or read out of bounds. An accepted
// container is walked section by section (every cursor read is hostile
// data at this point), and sections carrying a known component tag are
// fed into the real restore paths (Cache::loadState), which must fail
// with a latched Status rather than misbehave.
//
//===----------------------------------------------------------------------===//

#include "FuzzCheck.h"

#include "gcache/memsys/Cache.h"
#include "gcache/support/Snapshot.h"
#include "gcache/support/Status.h"

#include <cstdint>
#include <vector>

using namespace gcache;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Bytes(Data, Data + Size);

  SnapshotReader R;
  Status S = R.openBuffer(Bytes);
  if (!S.ok())
    return 0; // structured rejection is a pass

  for (size_t I = 0; I != R.sectionCount(); ++I) {
    const std::string &Tag = R.sectionTag(I);
    FUZZ_CHECK(R.hasSection(Tag), "listed section must be retrievable");

    // Drain the payload through the cursor API; a sticky error is fine,
    // out-of-bounds reads are not.
    SnapshotCursor C = R.section(Tag);
    while (C.ok() && C.remaining() > 0) {
      switch (C.remaining() % 4) {
      case 0:
        (void)C.getU64();
        break;
      case 1:
        (void)C.getU8();
        break;
      case 2:
        (void)C.getVecU64();
        break;
      default:
        (void)C.getString();
        break;
      }
    }
    (void)C.finish();

    // Feed the payload to a real component restore path. The geometry
    // almost never matches, so this exercises the validation arm; when
    // the fuzzer does synthesize a matching prefix, the load must
    // either succeed or latch a Status — never crash.
    SnapshotCursor Load = R.section(Tag);
    Cache Victim({.SizeBytes = 1 << 10, .BlockBytes = 32});
    try {
      Victim.loadState(Load);
      if (Load.finish().ok()) {
        FUZZ_CHECK(Victim.auditState().ok(),
                   "a snapshot the cache accepts must restore a "
                   "self-consistent state");
      }
    } catch (const StatusError &) {
      // Structured rejection of hostile state is a pass.
    }
  }
  return 0;
}
