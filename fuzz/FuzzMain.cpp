//===- FuzzMain.cpp - Standalone driver for fuzz targets ----------------------===//
//
// Part of the gcache project (Reinhold, PLDI 1994 reproduction).
//
// The fuzz targets export the libFuzzer entry point
// LLVMFuzzerTestOneInput. When the toolchain provides libFuzzer
// (-fsanitize=fuzzer), the real engine links in and this file is not
// built. GCC has no libFuzzer, so this fallback driver supplies a main()
// that replays corpus inputs and then exercises deterministic mutations
// of them — enough to regression-test every corpus entry and to give CI a
// meaningful smoke run on any compiler.
//
// Usage mirrors the libFuzzer flags the CI job uses:
//   fuzz_xxx [-runs=N] [-seed=N] [-max_len=N] [-max_total_time=SECS]
//            corpus-file-or-dir...
//
//===----------------------------------------------------------------------===//

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <dirent.h>
#include <string>
#include <sys/stat.h>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size);

namespace {

/// xorshift64* — deterministic across platforms, no libc rand() state.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545f4914f6cdd1dull;
  }
  size_t below(size_t N) { return N ? next() % N : 0; }
};

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  Out.clear();
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.insert(Out.end(), Buf, Buf + N);
  std::fclose(F);
  return true;
}

void collectInputs(const std::string &Path, std::vector<std::string> &Out) {
  struct stat St;
  if (stat(Path.c_str(), &St) != 0) {
    std::fprintf(stderr, "warning: cannot stat '%s'\n", Path.c_str());
    return;
  }
  if (!S_ISDIR(St.st_mode)) {
    Out.push_back(Path);
    return;
  }
  if (DIR *D = opendir(Path.c_str())) {
    while (const dirent *E = readdir(D)) {
      if (E->d_name[0] == '.')
        continue;
      collectInputs(Path + "/" + E->d_name, Out);
    }
    closedir(D);
  }
}

/// One mutation of a corpus entry: bit flips, byte stomps, truncation,
/// duplication, or splice-with-random-block.
std::vector<uint8_t> mutate(const std::vector<uint8_t> &Seed, Rng &R,
                            size_t MaxLen) {
  std::vector<uint8_t> M = Seed;
  switch (R.below(5)) {
  case 0: // flip a few bits
    for (unsigned I = 0, N = 1 + R.below(8); I != N && !M.empty(); ++I)
      M[R.below(M.size())] ^= static_cast<uint8_t>(1u << R.below(8));
    break;
  case 1: // stomp a run of bytes
    if (!M.empty()) {
      size_t At = R.below(M.size());
      size_t Len = 1 + R.below(16);
      for (size_t I = At; I < M.size() && I < At + Len; ++I)
        M[I] = static_cast<uint8_t>(R.next());
    }
    break;
  case 2: // truncate
    M.resize(R.below(M.size() + 1));
    break;
  case 3: // duplicate a tail chunk
    if (!M.empty()) {
      size_t At = R.below(M.size());
      M.insert(M.end(), M.begin() + At, M.end());
    }
    break;
  default: // insert a random block
    {
      size_t At = R.below(M.size() + 1);
      std::vector<uint8_t> Block(1 + R.below(32));
      for (uint8_t &B : Block)
        B = static_cast<uint8_t>(R.next());
      M.insert(M.begin() + At, Block.begin(), Block.end());
    }
    break;
  }
  if (M.size() > MaxLen)
    M.resize(MaxLen);
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Runs = 1000, Seed = 1, MaxLen = 1 << 20, MaxSeconds = 0;
  std::vector<std::string> Inputs;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "-runs=", 6) == 0)
      Runs = std::strtoull(A + 6, nullptr, 10);
    else if (std::strncmp(A, "-seed=", 6) == 0)
      Seed = std::strtoull(A + 6, nullptr, 10);
    else if (std::strncmp(A, "-max_len=", 9) == 0)
      MaxLen = std::strtoull(A + 9, nullptr, 10);
    else if (std::strncmp(A, "-max_total_time=", 16) == 0)
      MaxSeconds = std::strtoull(A + 16, nullptr, 10);
    else if (A[0] == '-')
      std::fprintf(stderr, "warning: ignoring unknown flag '%s'\n", A);
    else
      collectInputs(A, Inputs);
  }

  std::vector<std::vector<uint8_t>> Corpus;
  for (const std::string &Path : Inputs) {
    std::vector<uint8_t> Bytes;
    if (readFile(Path, Bytes))
      Corpus.push_back(std::move(Bytes));
    else
      std::fprintf(stderr, "warning: cannot read '%s'\n", Path.c_str());
  }
  if (Corpus.empty())
    Corpus.push_back({}); // still exercise the empty input

  // Every corpus entry verbatim first — the regression-test half.
  uint64_t Executed = 0;
  for (const auto &C : Corpus) {
    LLVMFuzzerTestOneInput(C.data(), C.size());
    ++Executed;
  }

  // Then deterministic mutations until the run or time budget is spent.
  Rng R(Seed);
  std::time_t Start = std::time(nullptr);
  for (uint64_t I = 0; I != Runs; ++I) {
    if (MaxSeconds && std::time(nullptr) - Start >= (std::time_t)MaxSeconds)
      break;
    std::vector<uint8_t> M = mutate(Corpus[R.below(Corpus.size())], R, MaxLen);
    LLVMFuzzerTestOneInput(M.data(), M.size());
    ++Executed;
  }

  std::printf("%s: executed %llu inputs (%zu corpus seeds), no failures\n",
              Argv[0], static_cast<unsigned long long>(Executed),
              Corpus.size());
  return 0;
}
