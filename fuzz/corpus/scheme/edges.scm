; Syntax corner cases the reader must take in stride.
()
(()) ; empty lists nest
[define bracketed 1] ; square brackets
(a . b)
(a b . (c d)) ; dotted tail that is itself a list
((((((((deep))))))))
'(quote (quote x))
1+ ->x - +  ; symbols that look almost numeric
.5 -0.25 1e9 ; reals without integer part, negative, exponent
"" ; empty string
#\s ; single-letter char that prefixes no named char
