//===- cache_explorer.cpp - Sweep cache designs for a workload -----------------===//
//
// Example: explore the §4 cache design space for one workload and emit a
// CSV of (cache size, block size, associativity, policy) -> miss counts
// and overheads, ready for plotting. One program run feeds every
// configuration simultaneously.
//
// Usage: cache_explorer [--workload gambit] [--scale 0.3] > sweep.csv
//
//===----------------------------------------------------------------------===//

#include "gcache/core/Experiment.h"
#include "gcache/support/FaultInjector.h"
#include "gcache/support/Options.h"
#include "gcache/support/Table.h"

#include <cstdio>

using namespace gcache;

int main(int Argc, char **Argv) {
  Options Opts = Options::parse(Argc, Argv);
  std::vector<std::string> Unknown = Opts.unknownFlags({"workload", "scale"});
  if (!Unknown.empty()) {
    for (const std::string &F : Unknown)
      std::fprintf(stderr, "error: unknown flag --%s\n", F.c_str());
    std::fprintf(stderr, "usage: cache_explorer [--workload W] [--scale S]\n");
    return 2;
  }
  std::string Name = Opts.get("workload", "gambit");
  Expected<double> ScaleArg = Opts.getStrictDouble("scale", 0.3);
  if (!ScaleArg.ok()) {
    std::fprintf(stderr, "error: %s\n", ScaleArg.status().message().c_str());
    return 2;
  }
  double Scale = *ScaleArg;
  Status Fault = faultInjector().armFromEnv();
  if (!Fault.ok()) {
    std::fprintf(stderr, "error: %s\n", Fault.message().c_str());
    return 2;
  }

  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Name.c_str());
    return 2;
  }

  // Build a bank covering sizes x blocks x {direct, 2-way} x both
  // write-miss policies.
  auto Bank = std::make_unique<CacheBank>();
  for (uint32_t Size : paperCacheSizes())
    for (uint32_t Block : paperBlockSizes())
      for (uint32_t Ways : {1u, 2u})
        for (WriteMissPolicy P :
             {WriteMissPolicy::WriteValidate, WriteMissPolicy::FetchOnWrite}) {
          CacheConfig C;
          C.SizeBytes = Size;
          C.BlockBytes = Block;
          C.Ways = Ways;
          C.WriteMiss = P;
          Bank->addConfig(C);
        }
  std::fprintf(stderr, "simulating %zu cache configurations in one pass "
                       "of %s...\n",
               Bank->size(), Name.c_str());

  ExperimentOptions O;
  O.Scale = Scale;
  O.Grid = CacheGridKind::None;
  O.ExtraSinks = {Bank.get()};
  Expected<ProgramRun> R = tryRunProgram(*W, O);
  if (!R.ok()) {
    std::fprintf(stderr, "FAILED %s: %s\n", Name.c_str(),
                 R.status().toString().c_str());
    return 1;
  }
  ProgramRun Run = R.take();

  Machine Slow = slowMachine();
  Machine Fast = fastMachine();
  std::printf("workload,cache_bytes,block_bytes,ways,policy,refs,"
              "fetch_misses,alloc_misses,writebacks,miss_ratio,"
              "o_cache_slow,o_cache_fast\n");
  for (size_t I = 0; I != Bank->size(); ++I) {
    const Cache &C = Bank->cache(I);
    CacheCounters T = C.totalCounters();
    std::printf(
        "%s,%u,%u,%u,%s,%llu,%llu,%llu,%llu,%.6f,%.6f,%.6f\n", Name.c_str(),
        C.config().SizeBytes, C.config().BlockBytes, C.config().Ways,
        C.config().WriteMiss == WriteMissPolicy::WriteValidate ? "wv" : "fow",
        static_cast<unsigned long long>(T.refs()),
        static_cast<unsigned long long>(T.FetchMisses),
        static_cast<unsigned long long>(T.NoFetchMisses),
        static_cast<unsigned long long>(T.Writebacks),
        static_cast<double>(T.FetchMisses) / T.refs(),
        controlOverhead(C, Run, Slow), controlOverhead(C, Run, Fast));
  }
  std::fprintf(stderr, "done: %s refs, %s instructions\n",
               fmtCount(Run.TotalRefs).c_str(),
               fmtCount(Run.Stats.Instructions).c_str());
  return 0;
}
