//===- quickstart.cpp - Five-minute tour of the gcache API --------------------===//
//
// Builds a complete Scheme system, runs a small mostly-functional program
// while simulating a direct-mapped cache, and prints the paper's §5 cache
// overhead metric for it. This is the minimal end-to-end use of the
// library:
//
//   1. wire a trace bus with the sinks you care about;
//   2. construct a SchemeSystem (heap + collector + VM + prelude);
//   3. loadDefinitions() your program, run() the measured expression;
//   4. read the cache counters and evaluate the overhead metrics.
//
//===----------------------------------------------------------------------===//

#include "gcache/core/Experiment.h"
#include "gcache/memsys/Cache.h"
#include "gcache/support/FaultInjector.h"
#include "gcache/support/Table.h"
#include "gcache/trace/Sinks.h"
#include "gcache/vm/SchemeSystem.h"

#include <cstdio>

using namespace gcache;

int main() {
  Status Fault = faultInjector().armFromEnv();
  if (!Fault.ok()) {
    std::fprintf(stderr, "error: %s\n", Fault.message().c_str());
    return 2;
  }
  // 1. A cache to simulate (64 KB direct-mapped, 64-byte blocks,
  //    write-validate — the paper's workhorse configuration) and a
  //    counter for the reference totals.
  Cache Sim({.SizeBytes = 64 << 10, .BlockBytes = 64});
  CountingSink Counts;
  TraceBus Bus;
  Bus.addSink(&Sim);
  Bus.addSink(&Counts);

  // 2. A Scheme system with no garbage collector: linear allocation in
  //    one contiguous area, exactly the paper's control experiment.
  SchemeSystemConfig Config;
  Config.Gc = GcKind::None;
  Config.Bus = &Bus;
  SchemeSystem Scheme(Config);

  // 3. A little mostly-functional program: build and sum many short-lived
  //    lists (loaded untraced, then the run expression is measured).
  Scheme.loadDefinitions(R"scheme(
    (define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
    (define (sum l) (fold-left + 0 l))
    (define (church-sum rounds)
      (let loop ((i 0) (acc 0))
        (if (= i rounds)
            acc
            (loop (+ i 1) (+ acc (sum (build 100)))))))
  )scheme");
  // Failures (a read error, an injected fault via GCACHE_FAULT, heap
  // exhaustion) surface as StatusError; catch at the unit boundary.
  Value Result;
  try {
    Result = Scheme.run("(church-sum 2000)");
  } catch (const StatusError &E) {
    std::fprintf(stderr, "FAILED: %s\n", E.status().toString().c_str());
    return 1;
  }

  // 4. Report.
  const RunStats &Stats = Scheme.lastRunStats();
  Machine Slow = slowMachine();
  Machine Fast = fastMachine();
  uint64_t Misses = Sim.counters(Phase::Mutator).FetchMisses;

  std::printf("result                : %s\n",
              Scheme.vm().valueToString(Result, true).c_str());
  std::printf("instructions          : %s\n",
              fmtCount(Stats.Instructions).c_str());
  std::printf("data references       : %s (%.2f per instruction)\n",
              fmtCount(Counts.totalRefs()).c_str(),
              double(Counts.totalRefs()) / Stats.Instructions);
  std::printf("bytes allocated       : %s\n",
              fmtCount(Stats.DynamicBytes).c_str());
  std::printf("cache                 : %s\n", Sim.config().label().c_str());
  std::printf("fetch misses          : %s (miss ratio %.4f)\n",
              fmtCount(Misses).c_str(),
              double(Misses) / Counts.totalRefs());
  std::printf("O_cache (33 MHz slow) : %s\n",
              fmtPercent(cacheOverhead(Misses, Slow.penaltyCycles(64),
                                       Stats.Instructions))
                  .c_str());
  std::printf("O_cache (500 MHz fast): %s\n",
              fmtPercent(cacheOverhead(Misses, Fast.penaltyCycles(64),
                                       Stats.Instructions))
                  .c_str());
  std::printf("\nThe paper's claim in one number: even this naive, "
              "allocation-heavy program\nmostly stays under a few percent "
              "overhead in a small direct-mapped cache,\nwith no garbage "
              "collector helping it.\n");
  return 0;
}
