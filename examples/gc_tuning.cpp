//===- gc_tuning.cpp - Compare collectors on one workload ----------------------===//
//
// Example: use the experiment drivers to answer "which collector should I
// run, and how big should its spaces be?" for one of the five workloads.
// Runs the control (no GC), the Cheney semispace collector at two sizes,
// and the generational collector at two nursery sizes, then prints total
// overhead (O_cache + O_gc) per configuration for both processor models.
//
// Usage: gc_tuning [--workload lp] [--scale 0.4]
//
//===----------------------------------------------------------------------===//

#include "gcache/core/Experiment.h"
#include "gcache/support/FaultInjector.h"
#include "gcache/support/Options.h"
#include "gcache/support/Table.h"

#include <cstdio>

using namespace gcache;

int main(int Argc, char **Argv) {
  Options Opts = Options::parse(Argc, Argv);
  std::vector<std::string> Unknown = Opts.unknownFlags({"workload", "scale"});
  if (!Unknown.empty()) {
    for (const std::string &F : Unknown)
      std::fprintf(stderr, "error: unknown flag --%s\n", F.c_str());
    std::fprintf(stderr, "usage: gc_tuning [--workload W] [--scale S]\n");
    return 2;
  }
  std::string Name = Opts.get("workload", "lp");
  Expected<double> ScaleArg = Opts.getStrictDouble("scale", 0.4);
  if (!ScaleArg.ok()) {
    std::fprintf(stderr, "error: %s\n", ScaleArg.status().message().c_str());
    return 2;
  }
  double Scale = *ScaleArg;
  uint32_t CacheSize = 256 << 10;
  Status Fault = faultInjector().armFromEnv();
  if (!Fault.ok()) {
    std::fprintf(stderr, "error: %s\n", Fault.message().c_str());
    return 2;
  }

  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "error: unknown workload '%s' (try orbit/imps/lp/"
                         "nbody/gambit)\n",
                 Name.c_str());
    return 2;
  }
  std::printf("tuning collectors for %s (scale %.2f, %s cache, 64b "
              "blocks)\n\n",
              Name.c_str(), Scale, fmtSize(CacheSize).c_str());

  ExperimentOptions Base;
  Base.Scale = Scale;
  Base.Grid = CacheGridKind::SizeSweep;
  Expected<ProgramRun> Ctl = tryRunProgram(*W, Base);
  if (!Ctl.ok()) {
    std::fprintf(stderr, "FAILED %s (control): %s\n", Name.c_str(),
                 Ctl.status().toString().c_str());
    return 1;
  }
  ProgramRun Control = Ctl.take();
  uint32_t Semi = static_cast<uint32_t>(Control.AllocBytes / 5 + 0xffff) &
                  ~0xffffu;
  if (Semi < (512u << 10))
    Semi = 512u << 10;

  struct Row {
    std::string Label;
    ProgramRun Run;
  };
  std::vector<Row> Rows;

  bool AnyFailed = false;
  auto AddGcRun = [&](const std::string &Label, GcKind Kind,
                      uint32_t SemiBytes, uint32_t Nursery) {
    ExperimentOptions O = Base;
    O.Gc = Kind;
    O.SemispaceBytes = SemiBytes;
    O.Generational.NurseryBytes = Nursery;
    O.Generational.OldSemispaceBytes = SemiBytes;
    std::printf("running %s...\n", Label.c_str());
    Expected<ProgramRun> R = tryRunProgram(*W, O);
    if (!R.ok()) {
      std::fprintf(stderr, "FAILED %s: %s\n", Label.c_str(),
                   R.status().toString().c_str());
      AnyFailed = true;
      return;
    }
    Rows.push_back({Label, R.take()});
  };
  AddGcRun("cheney/" + fmtSize(Semi), GcKind::Cheney, Semi, 0);
  AddGcRun("cheney/" + fmtSize(Semi * 2), GcKind::Cheney, Semi * 2, 0);
  AddGcRun("gen/nursery-128kb", GcKind::Generational, Semi, 128 << 10);
  AddGcRun("gen/nursery-1mb", GcKind::Generational, Semi, 1 << 20);

  for (const Machine &M : {slowMachine(), fastMachine()}) {
    std::printf("\n--- %s processor, total overhead (O_cache + O_gc) ---\n",
                M.Processor.Name.c_str());
    const Cache *CtC = Control.Bank->find(CacheSize, 64);
    double BaseOverhead = controlOverhead(*CtC, Control, M);
    Table T({"configuration", "collections", "O_cache", "O_gc", "total"});
    T.addRow({"no gc (control)", "0", fmtPercent(BaseOverhead), "-",
              fmtPercent(BaseOverhead)});
    for (const Row &R : Rows) {
      const Cache *GcC = R.Run.Bank->find(CacheSize, 64);
      double OGc = gcOverhead(gcInputsFor(*GcC, *CtC, R.Run, M));
      T.addRow({R.Label, std::to_string(R.Run.Collections),
                fmtPercent(BaseOverhead), fmtPercent(OGc),
                fmtPercent(BaseOverhead + OGc)});
    }
    std::fputs(T.toString().c_str(), stdout);
  }
  std::printf("\nReading the table: the paper argues the winner should be "
              "an infrequently-run\ngenerational configuration; lp "
              "punishes plain Cheney hardest.\n");
  return AnyFailed ? 1 : 0;
}
