//===- missplot_art.cpp - Watch the allocation wave sweep the cache ------------===//
//
// Example: renders the §7 cache-miss plot for any workload and cache
// geometry as ASCII art and a PGM image. The "allocation wave" of linear
// allocation appears as broken diagonals; colliding busy blocks appear as
// horizontal stripes.
//
// Usage: missplot_art [--workload nbody] [--cache-kb 64] [--block 64]
//                     [--scale 0.15] [--gc cheney]
//
//===----------------------------------------------------------------------===//

#include "gcache/analysis/MissPlot.h"
#include "gcache/core/Experiment.h"
#include "gcache/support/Options.h"
#include "gcache/support/Table.h"

#include <cstdio>
#include <fstream>

using namespace gcache;

int main(int Argc, char **Argv) {
  Options Opts = Options::parse(Argc, Argv);
  std::string Name = Opts.get("workload", "nbody");
  double Scale = Opts.getDouble("scale", 0.15);
  uint32_t CacheKb = static_cast<uint32_t>(Opts.getInt("cache-kb", 64));
  uint32_t Block = static_cast<uint32_t>(Opts.getInt("block", 64));
  std::string GcName = Opts.get("gc", "none");

  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", Name.c_str());
    return 1;
  }

  CacheConfig Config;
  Config.SizeBytes = CacheKb << 10;
  Config.BlockBytes = Block;
  if (!Config.isValid()) {
    std::fprintf(stderr, "invalid cache geometry %u KB / %u B\n", CacheKb,
                 Block);
    return 1;
  }
  MissPlot Plot(Config);

  ExperimentOptions O;
  O.Scale = Scale;
  O.Grid = CacheGridKind::None;
  O.Gc = GcName == "cheney"         ? GcKind::Cheney
         : GcName == "generational" ? GcKind::Generational
                                    : GcKind::None;
  O.ExtraSinks = {&Plot};
  ProgramRun Run = runProgram(*W, O);

  std::printf("%s in %s/%s (%s, %s refs, %llu collections)\n\n",
              Name.c_str(), fmtSize(Config.SizeBytes).c_str(),
              fmtSize(Block).c_str(), GcName.c_str(),
              fmtCount(Run.TotalRefs).c_str(),
              static_cast<unsigned long long>(Run.Collections));
  std::fputs(Plot.renderAscii(110, 40).c_str(), stdout);

  std::string Path = "missplot_" + Name + "_" + GcName + ".pgm";
  std::ofstream Out(Path, std::ios::binary);
  Out << Plot.renderPgm();
  std::printf("\nfull resolution: %s (fill %.4f)\n", Path.c_str(),
              Plot.fillFraction());
  return 0;
}
