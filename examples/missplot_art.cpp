//===- missplot_art.cpp - Watch the allocation wave sweep the cache ------------===//
//
// Example: renders the §7 cache-miss plot for any workload and cache
// geometry as ASCII art and a PGM image. The "allocation wave" of linear
// allocation appears as broken diagonals; colliding busy blocks appear as
// horizontal stripes.
//
// Usage: missplot_art [--workload nbody] [--cache-kb 64] [--block 64]
//                     [--scale 0.15] [--gc cheney]
//
//===----------------------------------------------------------------------===//

#include "gcache/analysis/MissPlot.h"
#include "gcache/core/Experiment.h"
#include "gcache/support/FaultInjector.h"
#include "gcache/support/Options.h"
#include "gcache/support/Table.h"

#include <cstdio>
#include <fstream>

using namespace gcache;

int main(int Argc, char **Argv) {
  Options Opts = Options::parse(Argc, Argv);
  std::vector<std::string> Unknown =
      Opts.unknownFlags({"workload", "scale", "cache-kb", "block", "gc"});
  if (!Unknown.empty()) {
    for (const std::string &F : Unknown)
      std::fprintf(stderr, "error: unknown flag --%s\n", F.c_str());
    std::fprintf(stderr, "usage: missplot_art [--workload W] [--scale S] "
                         "[--cache-kb N] [--block N] [--gc none|cheney|"
                         "generational]\n");
    return 2;
  }
  std::string Name = Opts.get("workload", "nbody");
  Expected<double> ScaleArg = Opts.getStrictDouble("scale", 0.15);
  Expected<unsigned> CacheKbArg = Opts.getStrictUnsigned("cache-kb", 64);
  Expected<unsigned> BlockArg = Opts.getStrictUnsigned("block", 64);
  for (const Status &S :
       {ScaleArg.ok() ? Status() : ScaleArg.status(),
        CacheKbArg.ok() ? Status() : CacheKbArg.status(),
        BlockArg.ok() ? Status() : BlockArg.status()})
    if (!S.ok()) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return 2;
    }
  double Scale = *ScaleArg;
  uint32_t CacheKb = *CacheKbArg;
  uint32_t Block = *BlockArg;
  Status Fault = faultInjector().armFromEnv();
  if (!Fault.ok()) {
    std::fprintf(stderr, "error: %s\n", Fault.message().c_str());
    return 2;
  }
  std::string GcName = Opts.get("gc", "none");
  if (GcName != "none" && GcName != "cheney" && GcName != "generational") {
    std::fprintf(stderr, "error: unknown --gc '%s' (none|cheney|"
                         "generational)\n",
                 GcName.c_str());
    return 2;
  }

  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Name.c_str());
    return 2;
  }

  CacheConfig Config;
  Config.SizeBytes = CacheKb << 10;
  Config.BlockBytes = Block;
  if (!Config.isValid()) {
    std::fprintf(stderr, "error: invalid cache geometry %u KB / %u B\n",
                 CacheKb, Block);
    return 2;
  }
  MissPlot Plot(Config);

  ExperimentOptions O;
  O.Scale = Scale;
  O.Grid = CacheGridKind::None;
  O.Gc = GcName == "cheney"         ? GcKind::Cheney
         : GcName == "generational" ? GcKind::Generational
                                    : GcKind::None;
  O.ExtraSinks = {&Plot};
  Expected<ProgramRun> R = tryRunProgram(*W, O);
  if (!R.ok()) {
    std::fprintf(stderr, "FAILED %s: %s\n", Name.c_str(),
                 R.status().toString().c_str());
    return 1;
  }
  ProgramRun Run = R.take();

  std::printf("%s in %s/%s (%s, %s refs, %llu collections)\n\n",
              Name.c_str(), fmtSize(Config.SizeBytes).c_str(),
              fmtSize(Block).c_str(), GcName.c_str(),
              fmtCount(Run.TotalRefs).c_str(),
              static_cast<unsigned long long>(Run.Collections));
  std::fputs(Plot.renderAscii(110, 40).c_str(), stdout);

  std::string Path = "missplot_" + Name + "_" + GcName + ".pgm";
  std::ofstream Out(Path, std::ios::binary);
  Out << Plot.renderPgm();
  std::printf("\nfull resolution: %s (fill %.4f)\n", Path.c_str(),
              Plot.fillFraction());
  return 0;
}
